"""Packet-granularity NOC contention model.

Every directed link of the topology is backed by a FIFO
:class:`~repro.sim.resource.Channel`; a packet occupies each link it crosses
for its flit count (one flit per cycle on the 16-byte links of Table 2).  The
head of the packet advances one hop per ``hop_cycles`` after it is granted a
link, and the tail arrives ``flits - 1`` cycles after the head at the final
hop, so the zero-load latency is ``hops * hop_cycles + (flits - 1)`` and
contended links introduce queuing exactly where the paper observes it (the MC
and NI edge columns, the mesh bisection, the per-tile unroll paths).

Lookahead hop fusion
--------------------

Advancing the head one event per hop is exact but costs one kernel event per
link crossed.  The fused walk exploits the discrete-event lookahead: while a
packet's arrival at its next router falls *strictly before* the simulator's
queue head (:meth:`~repro.sim.engine.Simulator.next_event_time`), no other
event can execute in between, so nothing can acquire, observe or reroute
ahead of the packet — the walk may acquire the next link immediately with
``Resource.acquire(occupancy, earliest=arrival)`` and keep going.  At low
load (exactly where the paper's latency figures live) this collapses a whole
k-hop route into a single delivery event; under contention the condition
fails and the walk degrades to the per-hop event chain, event for event.

Two details keep fused runs byte-identical to unfused ones:

* The walk only fuses from *inside an event callback* (the scheduled
  ``_hop`` continuation).  ``send`` itself still acquires the first link
  synchronously and schedules the continuation: code running later in the
  same callback (e.g. an unroll loop injecting sibling packets at the same
  cycle) may acquire the very channels a fused walk would have pre-acquired
  at later virtual times, which would reorder FIFO grants.
* Ties fall back: when the next arrival lands exactly on the queue-head
  time, the head event was scheduled first and must execute first, so the
  walk schedules a normal hop event and preserves ``seq`` ordering.

``REPRO_HOP_FUSION=0`` (or ``hop_fusion=False``) force-disables fusion; the
equivalence suite runs every figure both ways and compares bytes.

Fault injection
---------------

A :class:`~repro.faults.injector.FaultState` attached as :attr:`faults`
perturbs routing while a fault window is active: per-hop extra delay before
link acquisition (``link_down`` deferral, ``router_degrade`` multipliers)
and a retransmit penalty folded into final delivery (``packet_loss``).
Every check is gated on ``faults is not None``, so unfaulted runs stay
bit-identical.  Fusion needs no extra guard at fault boundaries: the
injector's activation/deactivation toggles are cancellable queue-resident
events, so :meth:`~repro.sim.engine.Simulator.next_event_time` never exceeds
the next toggle and the strict ``arrival < head`` bound stops a fused walk
at the boundary — falling back to per-hop events exactly like the queue-head
tie case.  Since every link *acquisition* time is lookahead-guarded, the
fault state a fused walk observes is identical to the one the per-hop event
chain would observe, hop for hop.
"""

from __future__ import annotations

import os

from heapq import heappush
from typing import Any, Callable, Dict, Hashable, Optional, Sequence, Tuple

from repro.config import MessageClass, NocConfig
from repro.noc.packet import Packet
from repro.noc.topology import Link, Topology
from repro.sim import perf
from repro.sim.engine import Simulator
from repro.sim.resource import Channel

DeliveryCallback = Callable[[Packet], None]

#: One channel-bound hop: (channel, hop_cycles, crosses_bisection, link_key).
#: The link key rides along so fault models can target specific routers
#: without any topology lookups on the hot path.
BoundHop = Tuple[Channel, int, bool, Tuple[Hashable, Hashable]]


def hop_fusion_default() -> bool:
    """Process-wide hop-fusion default: on unless ``REPRO_HOP_FUSION`` opts out.

    Read at fabric construction time so equivalence tests (and campaign
    workers, which inherit the environment) can force-disable fusion for a
    whole run without threading a flag through every builder.
    """
    return os.environ.get("REPRO_HOP_FUSION", "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


class NocFabric:
    """Routes packets over a :class:`Topology` with per-link contention."""

    #: Cycles charged for a message whose source and destination agents share
    #: a router (e.g. a core talking to its own tile's LLC slice).
    LOCAL_DELIVERY_CYCLES = 1

    def __init__(self, sim: Simulator, topology: Topology, noc_config: NocConfig,
                 hop_fusion: Optional[bool] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.config = noc_config
        self.hop_fusion = hop_fusion_default() if hop_fusion is None else bool(hop_fusion)
        self.link_bytes = noc_config.link_bytes
        self._channels: Dict[Tuple[Hashable, Hashable], Channel] = {}
        #: Fault state installed by a FaultInjector (None on healthy runs).
        self.faults = None
        # Channel-bound route cache: route_cache_key -> tuple of
        # (channel, hop_cycles, crosses_bisection, link_key) hops, so the
        # per-hop fast path does no topology or channel-dict lookups.
        self._bound_routes: Dict[Hashable, Tuple[BoundHop, ...]] = {}
        # payload_bytes -> (flits, wire_bytes); the handful of distinct
        # payload sizes an experiment sends makes this a near-perfect cache.
        self._flit_sizes: Dict[int, Tuple[int, int]] = {}
        # Statistics
        self.packets_sent = 0
        #: Hop events elided by lookahead fusion since the last stats reset
        #: (lifetime counts live in the perf record, see lifetime_fused_hops).
        self.fused_hops = 0
        self.packets_delivered = 0
        self.payload_bytes_delivered = 0
        self.wire_bytes_sent = 0
        self.bytes_by_class: Dict[MessageClass, int] = {cls: 0 for cls in MessageClass}
        self._bisection_keys = self._compute_bisection_keys()
        self.bisection_bytes = 0
        self._perf = perf.register_fabric(self)

    @property
    def lifetime_packets_sent(self) -> int:
        """Like :attr:`packets_sent` but never zeroed by :meth:`reset_stats`
        (performance instrumentation needs a whole-run injection count)."""
        return self._perf.packets

    @property
    def lifetime_fused_hops(self) -> int:
        """Hop events elided by lookahead fusion over the fabric's lifetime."""
        return self._perf.fused_hops

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def send(
        self,
        src: Hashable,
        dst: Hashable,
        payload_bytes: int,
        msg_class: MessageClass,
        callback: Optional[DeliveryCallback] = None,
        payload: Any = None,
        tail: bool = False,
    ) -> Packet:
        """Inject a packet; ``callback(packet)`` fires at delivery time.

        ``tail=True`` declares that this send is the caller's *final
        simulation-affecting action at the current timestep* — it will not
        acquire resources, inject packets or schedule events after the call
        returns.  Under that contract the fused walk may start right here
        instead of behind a one-hop continuation event, collapsing an
        uncontended k-hop route into a single delivery event.  Passing
        ``tail=True`` from a callback that does more work afterwards can
        reorder FIFO channel grants and breaks run-to-run equivalence —
        leave it False when in doubt (the default is always safe).  One more
        caveat: a tail send issued *between* ``run()`` calls fuses without a
        horizon bound, so link statistics sampled at the next ``run(until)``
        horizon may already include the whole route's occupancy.
        """
        sim = self.sim
        now = sim._now
        packet = Packet(
            src=src,
            dst=dst,
            payload_bytes=payload_bytes,
            msg_class=msg_class,
            payload=payload,
            created_at=now,
        )
        self.packets_sent += 1
        self._perf.packets += 1
        size = self._flit_sizes.get(payload_bytes)
        if size is None:
            flits = packet.flits(self.link_bytes)
            size = self._flit_sizes[payload_bytes] = (flits, flits * self.link_bytes)
        flits, wire = size
        self.wire_bytes_sent += wire
        self.bytes_by_class[msg_class] += wire
        if src != dst:
            hops = self._bound_route(src, dst, msg_class, packet.packet_id)
            if tail and hops and self.hop_fusion:
                # Tail-send contract: nothing runs after us at this
                # timestep, so the whole walk (hop 0 included — acquiring at
                # earliest=now is the synchronous acquire) can fuse in place.
                self._hop(packet, hops, 0, flits, wire, callback)
                return packet
            if hops:
                # The first link is acquired synchronously, in injection
                # order — several sends in one callback must claim their
                # first channels FIFO exactly as before fusion existed.  The
                # rest of the walk runs as a scheduled event, where the fused
                # fast path is safe (see module docstring).
                channel, hop_cycles, crosses_bisection, link_key = hops[0]
                earliest = now
                faults = self.faults
                if faults is not None:
                    extra = faults.hop_delay(link_key, now, hop_cycles)
                    if extra > 0.0:
                        earliest = now + extra
                # Inlined Channel.acquire(flits) — see the matching block in
                # _hop.
                start = channel._free_at
                if earliest > start:
                    start = earliest
                channel._free_at = start + flits
                channel.busy_cycles += flits
                channel.grants += 1
                open_grants = channel._open_grants
                while open_grants and open_grants[0][1] <= now:
                    open_grants.popleft()
                open_grants.append((start, start + flits))
                channel.bytes_transferred += wire
                if crosses_bisection:
                    self.bisection_bytes += wire
                arrival = start + hop_cycles
                # Inlined Simulator.schedule_fast.  The event time is
                # computed as now + delta, never as the absolute arrival:
                # float addition does not guarantee now + (t - now) == t, and
                # byte-identity with the per-hop chain (which always
                # scheduled relative delays) must hold to the last bit.
                if len(hops) == 1:
                    delta = arrival + flits - 1 - now
                    if faults is not None:
                        loss = faults.loss_delay(packet.packet_id)
                        if loss > 0.0:
                            delta += loss
                    entry = (now + delta, next(sim._seq),
                             self._deliver, (packet, callback))
                else:
                    entry = (now + (arrival - now), next(sim._seq), self._hop,
                             (packet, hops, 1, flits, wire, callback))
                queue = sim._queue
                heappush(queue, entry)
                sim._perf.fast_events += 1
                if len(queue) > sim._peak_pending:
                    sim._peak_pending = len(queue)
                return packet
        sim.schedule_fast(self.LOCAL_DELIVERY_CYCLES, self._deliver, packet, callback)
        return packet

    def zero_load_latency(self, src: Hashable, dst: Hashable, payload_bytes: int,
                          msg_class: MessageClass = MessageClass.MEMORY_REQUEST) -> float:
        """Latency of a packet on an otherwise idle NOC (no queuing)."""
        if src == dst:
            return float(self.LOCAL_DELIVERY_CYCLES)
        links = self.topology.route_cached(src, dst, msg_class)
        if not links:
            return float(self.LOCAL_DELIVERY_CYCLES)
        head = sum(link.hop_cycles for link in links)
        flits = Packet(src, dst, payload_bytes, msg_class).flits(self.link_bytes)
        return head + (flits - 1)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def aggregate_wire_gbps(self, frequency_ghz: float, elapsed_cycles: Optional[float] = None) -> float:
        """Total NOC bandwidth consumed (header + padding included), in GBps."""
        elapsed = self.sim.now if elapsed_cycles is None else elapsed_cycles
        if elapsed <= 0:
            return 0.0
        return self.wire_bytes_sent / elapsed * frequency_ghz

    def bisection_gbps(self, frequency_ghz: float, elapsed_cycles: Optional[float] = None) -> float:
        """Bandwidth crossing the mesh bisection, in GBps (0 for non-mesh topologies)."""
        elapsed = self.sim.now if elapsed_cycles is None else elapsed_cycles
        if elapsed <= 0:
            return 0.0
        return self.bisection_bytes / elapsed * frequency_ghz

    def link_utilization(self) -> Dict[Tuple[Hashable, Hashable], float]:
        """Utilization of every link that has carried at least one packet."""
        return {key: channel.utilization() for key, channel in self._channels.items()}

    def max_link_utilization(self) -> float:
        """Utilization of the most loaded link (the NOC bottleneck)."""
        if not self._channels:
            return 0.0
        return max(channel.utilization() for channel in self._channels.values())

    def clear_route_cache(self) -> None:
        """Drop the channel-bound routes and the topology's memoized routes.

        Anything that mutates routing-relevant topology state must call this
        (not just ``topology.clear_route_cache()``): the fabric never consults
        the topology again for a key it has already bound.
        """
        self._bound_routes.clear()
        self.topology.clear_route_cache()

    def reset_stats(self) -> None:
        """Zero all counters (used at the end of the warm-up phase)."""
        self.packets_sent = 0
        self.fused_hops = 0
        self.packets_delivered = 0
        self.payload_bytes_delivered = 0
        self.wire_bytes_sent = 0
        self.bisection_bytes = 0
        self.bytes_by_class = {cls: 0 for cls in MessageClass}
        for channel in self._channels.values():
            channel.reset_stats()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _channel(self, link: Link) -> Channel:
        channel = self._channels.get(link.key)
        if channel is None:
            channel = Channel(self.sim, bytes_per_cycle=self.link_bytes,
                              name="link %r->%r" % (link.src, link.dst))
            self._channels[link.key] = channel
        return channel

    def _bind_links(self, links: Sequence[Link]) -> Tuple[BoundHop, ...]:
        """Resolve each link of a route to its channel once."""
        return tuple(
            (self._channel(link), link.hop_cycles,
             link.key in self._bisection_keys, link.key)
            for link in links
        )

    def _bound_route(
        self, src: Hashable, dst: Hashable, msg_class: MessageClass, packet_id: int
    ) -> Tuple[BoundHop, ...]:
        """The channel-bound route for a packet, cached when the topology allows.

        Uncacheable routes (topologies without a :meth:`Topology.route_cache_key`)
        fall back to binding per packet, which matches the pre-cache behaviour.
        """
        key = self.topology.route_cache_key(src, dst, msg_class, packet_id)
        if key is None:
            return self._bind_links(self.topology.route(src, dst, msg_class, packet_id))
        bound = self._bound_routes.get(key)
        if bound is None:
            bound = self._bind_links(self.topology.route_cached(src, dst, msg_class, packet_id))
            self._bound_routes[key] = bound
        return bound

    def _hop(self, packet: Packet, hops: Sequence[BoundHop], index: int,
             flits: int, wire: int, callback: Optional[DeliveryCallback]) -> None:
        """Walk the remaining hops, fusing as far as the lookahead allows.

        Runs as an event callback (the continuation ``send`` schedules) at
        the exact cycle the packet's head reaches router ``index`` — or
        synchronously from a ``tail=True`` send, whose contract provides the
        same guarantee that nothing else acts at the current timestep.  Each
        iteration acquires one link at the packet's virtual arrival time;
        while the next arrival stays strictly before the queue head, nothing
        can interleave and the walk continues in place instead of scheduling
        a hop event.  An empty queue means nothing can interleave at all.
        With :attr:`hop_fusion` off, the first lookahead check fails by
        construction and every hop schedules its own event, exactly as
        before.
        """
        sim = self.sim
        nhops = len(hops)
        # The lookahead bound: fuse while the next arrival < head.  The walk
        # itself only pushes events at/after the current arrival, so the
        # bound stays valid without re-peeking.  The active run(until=...)
        # horizon caps the bound too: the run may stop there and the caller
        # may sample link statistics that the per-hop chain would not yet
        # have accumulated — hops at/after the horizon must stay events.
        if self.hop_fusion:
            head = sim.next_event_time()
            horizon = sim._run_horizon
            if head is None or head > horizon:
                head = horizon
        else:
            head = float("-inf")
        now = sim._now
        arrival = now
        fused = 0
        faults = self.faults
        while True:
            channel, hop_cycles, crosses_bisection, link_key = hops[index]
            if faults is not None:
                extra = faults.hop_delay(link_key, arrival, hop_cycles)
                if extra > 0.0:
                    arrival = arrival + extra
            # Inlined Channel.acquire(flits, earliest=arrival) — one call per
            # hop is the hottest path in the whole simulator; keep in sync
            # with repro.sim.resource.Resource.acquire.
            start = channel._free_at
            if arrival > start:
                start = arrival
            channel._free_at = start + flits
            channel.busy_cycles += flits
            channel.grants += 1
            open_grants = channel._open_grants
            while open_grants and open_grants[0][1] <= now:
                open_grants.popleft()
            open_grants.append((start, start + flits))
            channel.bytes_transferred += wire
            if crosses_bisection:
                self.bisection_bytes += wire
            arrival = start + hop_cycles
            index += 1
            if index == nhops:
                # Final hop: the tail arrives flits-1 cycles after the head,
                # and the completion event delivers directly.  Event times
                # stay now + delta, matching the unfused chain bit for bit
                # (see the note in send()).
                delta = arrival + flits - 1 - now
                if faults is not None:
                    loss = faults.loss_delay(packet.packet_id)
                    if loss > 0.0:
                        delta += loss
                entry = (now + delta, next(sim._seq),
                         self._deliver, (packet, callback))
                break
            if arrival < head:
                fused += 1
                continue
            entry = (now + (arrival - now), next(sim._seq), self._hop,
                     (packet, hops, index, flits, wire, callback))
            break
        if fused:
            self.fused_hops += fused
            self._perf.fused_hops += fused
        queue = sim._queue
        heappush(queue, entry)
        sim._perf.fast_events += 1
        if len(queue) > sim._peak_pending:
            sim._peak_pending = len(queue)

    def _deliver(self, packet: Packet, callback: Optional[DeliveryCallback]) -> None:
        packet.delivered_at = self.sim.now
        self.packets_delivered += 1
        self.payload_bytes_delivered += packet.payload_bytes
        if callback is not None:
            callback(packet)

    def _compute_bisection_keys(self) -> set:
        bisection = getattr(self.topology, "bisection_links", None)
        if bisection is None:
            return set()
        return set(bisection())
