"""Packet-granularity NOC contention model.

Every directed link of the topology is backed by a FIFO
:class:`~repro.sim.resource.Channel`; a packet occupies each link it crosses
for its flit count (one flit per cycle on the 16-byte links of Table 2).  The
head of the packet advances one hop per ``hop_cycles`` after it is granted a
link, and the tail arrives ``flits - 1`` cycles after the head at the final
hop, so the zero-load latency is ``hops * hop_cycles + (flits - 1)`` and
contended links introduce queuing exactly where the paper observes it (the MC
and NI edge columns, the mesh bisection, the per-tile unroll paths).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Sequence, Tuple

from repro.config import MessageClass, NocConfig
from repro.noc.packet import Packet
from repro.noc.topology import Link, Topology
from repro.sim import perf
from repro.sim.engine import Simulator
from repro.sim.resource import Channel

DeliveryCallback = Callable[[Packet], None]


class NocFabric:
    """Routes packets over a :class:`Topology` with per-link contention."""

    #: Cycles charged for a message whose source and destination agents share
    #: a router (e.g. a core talking to its own tile's LLC slice).
    LOCAL_DELIVERY_CYCLES = 1

    def __init__(self, sim: Simulator, topology: Topology, noc_config: NocConfig) -> None:
        self.sim = sim
        self.topology = topology
        self.config = noc_config
        self.link_bytes = noc_config.link_bytes
        self._channels: Dict[Tuple[Hashable, Hashable], Channel] = {}
        # Channel-bound route cache: route_cache_key -> tuple of
        # (channel, hop_cycles, crosses_bisection) hops, so the per-hop fast
        # path does no topology or channel-dict lookups.
        self._bound_routes: Dict[Hashable, Tuple[Tuple[Channel, int, bool], ...]] = {}
        # Statistics
        self.packets_sent = 0
        self.packets_delivered = 0
        self.payload_bytes_delivered = 0
        self.wire_bytes_sent = 0
        self.bytes_by_class: Dict[MessageClass, int] = {cls: 0 for cls in MessageClass}
        self._bisection_keys = self._compute_bisection_keys()
        self.bisection_bytes = 0
        self._perf = perf.register_fabric(self)

    @property
    def lifetime_packets_sent(self) -> int:
        """Like :attr:`packets_sent` but never zeroed by :meth:`reset_stats`
        (performance instrumentation needs a whole-run injection count)."""
        return self._perf.packets

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def send(
        self,
        src: Hashable,
        dst: Hashable,
        payload_bytes: int,
        msg_class: MessageClass,
        callback: Optional[DeliveryCallback] = None,
        payload: Any = None,
    ) -> Packet:
        """Inject a packet; ``callback(packet)`` fires at delivery time."""
        packet = Packet(
            src=src,
            dst=dst,
            payload_bytes=payload_bytes,
            msg_class=msg_class,
            payload=payload,
            created_at=self.sim.now,
        )
        self.packets_sent += 1
        self._perf.packets += 1
        flits = packet.flits(self.link_bytes)
        wire = flits * self.link_bytes
        self.wire_bytes_sent += wire
        self.bytes_by_class[msg_class] += wire
        if src == dst:
            self.sim.schedule(self.LOCAL_DELIVERY_CYCLES, self._deliver, packet, callback)
            return packet
        hops = self._bound_route(src, dst, msg_class, packet.packet_id)
        if not hops:
            self.sim.schedule(self.LOCAL_DELIVERY_CYCLES, self._deliver, packet, callback)
            return packet
        self._hop(packet, hops, 0, flits, wire, callback)
        return packet

    def zero_load_latency(self, src: Hashable, dst: Hashable, payload_bytes: int,
                          msg_class: MessageClass = MessageClass.MEMORY_REQUEST) -> float:
        """Latency of a packet on an otherwise idle NOC (no queuing)."""
        if src == dst:
            return float(self.LOCAL_DELIVERY_CYCLES)
        links = self.topology.route_cached(src, dst, msg_class)
        if not links:
            return float(self.LOCAL_DELIVERY_CYCLES)
        head = sum(link.hop_cycles for link in links)
        flits = Packet(src, dst, payload_bytes, msg_class).flits(self.link_bytes)
        return head + (flits - 1)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def aggregate_wire_gbps(self, frequency_ghz: float, elapsed_cycles: Optional[float] = None) -> float:
        """Total NOC bandwidth consumed (header + padding included), in GBps."""
        elapsed = self.sim.now if elapsed_cycles is None else elapsed_cycles
        if elapsed <= 0:
            return 0.0
        return self.wire_bytes_sent / elapsed * frequency_ghz

    def bisection_gbps(self, frequency_ghz: float, elapsed_cycles: Optional[float] = None) -> float:
        """Bandwidth crossing the mesh bisection, in GBps (0 for non-mesh topologies)."""
        elapsed = self.sim.now if elapsed_cycles is None else elapsed_cycles
        if elapsed <= 0:
            return 0.0
        return self.bisection_bytes / elapsed * frequency_ghz

    def link_utilization(self) -> Dict[Tuple[Hashable, Hashable], float]:
        """Utilization of every link that has carried at least one packet."""
        return {key: channel.utilization() for key, channel in self._channels.items()}

    def max_link_utilization(self) -> float:
        """Utilization of the most loaded link (the NOC bottleneck)."""
        if not self._channels:
            return 0.0
        return max(channel.utilization() for channel in self._channels.values())

    def clear_route_cache(self) -> None:
        """Drop the channel-bound routes and the topology's memoized routes.

        Anything that mutates routing-relevant topology state must call this
        (not just ``topology.clear_route_cache()``): the fabric never consults
        the topology again for a key it has already bound.
        """
        self._bound_routes.clear()
        self.topology.clear_route_cache()

    def reset_stats(self) -> None:
        """Zero all counters (used at the end of the warm-up phase)."""
        self.packets_sent = 0
        self.packets_delivered = 0
        self.payload_bytes_delivered = 0
        self.wire_bytes_sent = 0
        self.bisection_bytes = 0
        self.bytes_by_class = {cls: 0 for cls in MessageClass}
        for channel in self._channels.values():
            channel.reset_stats()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _channel(self, link: Link) -> Channel:
        channel = self._channels.get(link.key)
        if channel is None:
            channel = Channel(self.sim, bytes_per_cycle=self.link_bytes,
                              name="link %r->%r" % (link.src, link.dst))
            self._channels[link.key] = channel
        return channel

    def _bind_links(self, links: Sequence[Link]) -> Tuple[Tuple[Channel, int, bool], ...]:
        """Resolve each link of a route to its channel once."""
        return tuple(
            (self._channel(link), link.hop_cycles, link.key in self._bisection_keys)
            for link in links
        )

    def _bound_route(
        self, src: Hashable, dst: Hashable, msg_class: MessageClass, packet_id: int
    ) -> Tuple[Tuple[Channel, int, bool], ...]:
        """The channel-bound route for a packet, cached when the topology allows.

        Uncacheable routes (topologies without a :meth:`Topology.route_cache_key`)
        fall back to binding per packet, which matches the pre-cache behaviour.
        """
        key = self.topology.route_cache_key(src, dst, msg_class, packet_id)
        if key is None:
            return self._bind_links(self.topology.route(src, dst, msg_class, packet_id))
        bound = self._bound_routes.get(key)
        if bound is None:
            bound = self._bind_links(self.topology.route_cached(src, dst, msg_class, packet_id))
            self._bound_routes[key] = bound
        return bound

    def _hop(self, packet: Packet, hops: Sequence[Tuple[Channel, int, bool]], index: int,
             flits: int, wire: int, callback: Optional[DeliveryCallback]) -> None:
        channel, hop_cycles, crosses_bisection = hops[index]
        grant = channel.acquire(flits)
        channel.bytes_transferred += wire
        if crosses_bisection:
            self.bisection_bytes += wire
        arrival = grant + hop_cycles
        index += 1
        sim = self.sim
        if index == len(hops):
            # Final hop: the tail arrives flits-1 cycles after the head, and
            # the completion event delivers directly (no pass through _hop).
            sim.schedule(arrival + flits - 1 - sim._now, self._deliver, packet, callback)
        else:
            sim.schedule(arrival - sim._now, self._hop, packet, hops, index, flits, wire,
                         callback)

    def _deliver(self, packet: Packet, callback: Optional[DeliveryCallback]) -> None:
        packet.delivered_at = self.sim.now
        self.packets_delivered += 1
        self.payload_bytes_delivered += packet.payload_bytes
        if callback is not None:
            callback(packet)

    def _compute_bisection_keys(self) -> set:
        bisection = getattr(self.topology, "bisection_links", None)
        if bisection is None:
            return set()
        return set(bisection())
