"""Network-on-chip substrate.

Provides the two on-chip topologies evaluated in the paper (2D mesh and
NOC-Out), the routing policies of §4.3 (XY, YX, O1Turn, CDR and the paper's
extended CDR with a directory-sourced class), and :class:`NocFabric`, the
packet-granularity contention model used by the node simulator.
"""

from repro.noc.packet import Packet
from repro.noc.topology import Topology, Link
from repro.noc.mesh import MeshTopology
from repro.noc.nocout import NocOutTopology, NOCOUT_LLC, NOCOUT_CORE, NOCOUT_EDGE, NOCOUT_MC
from repro.noc.routing import mesh_route, route_class_direction
from repro.noc.fabric import NocFabric

__all__ = [
    "Packet",
    "Topology",
    "Link",
    "MeshTopology",
    "NocOutTopology",
    "NOCOUT_LLC",
    "NOCOUT_CORE",
    "NOCOUT_EDGE",
    "NOCOUT_MC",
    "mesh_route",
    "route_class_direction",
    "NocFabric",
]
