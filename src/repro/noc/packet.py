"""NOC packet representation."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from repro.config import MessageClass

_packet_ids = itertools.count()

#: Bytes of NOC header per packet (one 16-byte flit in the paper's NOC).
HEADER_BYTES = 16


@dataclass(slots=True)
class Packet:
    """One message travelling over the on-chip network.

    ``payload_bytes`` is the application/protocol payload; the header flit is
    accounted for separately when computing the flit count.
    """

    src: Hashable
    dst: Hashable
    payload_bytes: int
    msg_class: MessageClass
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    delivered_at: Optional[float] = None

    def flits(self, link_bytes: int) -> int:
        """Number of flits occupied on a link of ``link_bytes`` width."""
        if self.payload_bytes < 0:
            raise ValueError("packet payload cannot be negative")
        return 1 + math.ceil(self.payload_bytes / link_bytes)

    def wire_bytes(self, link_bytes: int) -> int:
        """Total bytes occupied on the wire (header + padded payload)."""
        return self.flits(link_bytes) * link_bytes

    @property
    def latency(self) -> Optional[float]:
        """End-to-end NOC latency, available once delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Packet(#%d %s->%s %dB %s)" % (
            self.packet_id,
            self.src,
            self.dst,
            self.payload_bytes,
            self.msg_class.value,
        )
