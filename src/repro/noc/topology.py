"""Abstract on-chip topology interface.

A topology exposes a set of router nodes (hashable identifiers), a routing
function that returns the ordered list of directed :class:`Link` objects a
packet traverses, and the per-hop latency of each link.  The contention model
(:class:`~repro.noc.fabric.NocFabric`) attaches a bandwidth-limited channel
to every link returned here.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.config import MessageClass
from repro.errors import TopologyError


@dataclass(frozen=True)
class Link:
    """A directed link between two router nodes."""

    src: Hashable
    dst: Hashable
    #: Head-of-packet traversal latency of this hop in cycles.
    hop_cycles: int

    @property
    def key(self) -> Tuple[Hashable, Hashable]:
        """Identity of the physical channel (used to index contention state)."""
        return (self.src, self.dst)


class Topology(abc.ABC):
    """Interface implemented by :class:`MeshTopology` and :class:`NocOutTopology`."""

    @abc.abstractmethod
    def nodes(self) -> Iterable[Hashable]:
        """All router nodes in the topology."""

    @abc.abstractmethod
    def route(
        self, src: Hashable, dst: Hashable, msg_class: MessageClass, packet_id: int = 0
    ) -> Sequence[Link]:
        """Ordered links from ``src`` to ``dst`` for a packet of ``msg_class``."""

    # ------------------------------------------------------------------
    # Route caching
    # ------------------------------------------------------------------
    def route_cache_key(
        self, src: Hashable, dst: Hashable, msg_class: MessageClass, packet_id: int = 0
    ) -> Optional[Hashable]:
        """Memoization key for this route, or None when the route is uncacheable.

        Two calls with equal keys MUST produce identical routes; topologies
        whose routing is deterministic in ``(src, dst, class direction)``
        override this so :meth:`route_cached` (and the fabric's channel-bound
        fast path) can reuse computed routes.
        """
        return None

    def route_cached(
        self, src: Hashable, dst: Hashable, msg_class: MessageClass, packet_id: int = 0
    ) -> Tuple[Link, ...]:
        """Like :meth:`route` but memoized per :meth:`route_cache_key`.

        Returns the *same* tuple object for repeated calls with equal keys,
        so callers may use identity-based bookkeeping on the result.
        """
        key = self.route_cache_key(src, dst, msg_class, packet_id)
        if key is None:
            return tuple(self.route(src, dst, msg_class, packet_id))
        cache: Dict[Hashable, Tuple[Link, ...]] = self.__dict__.setdefault("_route_cache", {})
        cached = cache.get(key)
        if cached is None:
            cached = tuple(self.route(src, dst, msg_class, packet_id))
            cache[key] = cached
        return cached

    def clear_route_cache(self) -> None:
        """Drop every memoized route (tests and topology-mutation hooks).

        A :class:`~repro.noc.fabric.NocFabric` built on this topology keeps
        its own channel-bound route cache; invalidate through
        ``NocFabric.clear_route_cache()``, which clears both.
        """
        self.__dict__.pop("_route_cache", None)

    def route_cache_size(self) -> int:
        """Number of memoized routes currently held."""
        return len(self.__dict__.get("_route_cache", ()))

    def hop_count(self, src: Hashable, dst: Hashable) -> int:
        """Number of hops on the default route between two nodes."""
        return len(self.route_cached(src, dst, MessageClass.MEMORY_REQUEST))

    def min_latency_cycles(self, src: Hashable, dst: Hashable) -> int:
        """Zero-load head latency between two nodes."""
        return sum(link.hop_cycles for link in self.route_cached(src, dst, MessageClass.MEMORY_REQUEST))

    def validate_node(self, node: Hashable) -> None:
        """Raise :class:`TopologyError` if ``node`` is not part of the topology."""
        if node not in set(self.nodes()):
            raise TopologyError("node %r is not part of this topology" % (node,))


def build_path_links(path: List[Hashable], hop_cycles: int) -> List[Link]:
    """Convert a node path [a, b, c] into directed links [a->b, b->c]."""
    if len(path) < 1:
        raise TopologyError("a route must contain at least the source node")
    links: List[Link] = []
    for src, dst in zip(path, path[1:]):
        links.append(Link(src=src, dst=dst, hop_cycles=hop_cycles))
    return links
