"""Mesh routing policies (§4.3).

All functions operate on mesh coordinates ``(x, y)`` where ``x`` is the
column (0 = the chip's NI/network-router edge, ``side-1`` = the MC edge) and
``y`` is the row.  They return the full node path including the source and
destination routers.

Policies
--------
* **XY** — dimension-order, X first.
* **YX** — dimension-order, Y first.
* **O1Turn** — each packet picks XY or YX (here: by a deterministic hash of
  ``(src, dst, packet_id)``), which balances the two dimension orders
  [Seo et al.].  Hashing instead of packet-id parity matters because the
  packet-id counter is global: workloads that interleave two traffic classes
  hand each class packet ids of a single parity, which would pin every packet
  of a class to the same orientation.
* **CDR** — class-based deterministic routing [Abts et al.]: memory requests
  route YX so they spread over the column links before turning into the MC
  column; responses route XY.
* **CDR_EXTENDED** — the paper's modification: traffic *sourced by a
  directory/LLC slice* gets its own class routed YX; everything else routes
  XY.  This keeps both the NI edge column and the MC column from becoming
  turn hotspots (§4.3).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import MessageClass, RoutingAlgorithm
from repro.errors import RoutingError

Coord = Tuple[int, int]


def _straight(a: int, b: int) -> List[int]:
    """Inclusive integer walk from a to b."""
    step = 1 if b >= a else -1
    return list(range(a, b + step, step))


def xy_path(src: Coord, dst: Coord) -> List[Coord]:
    """Dimension-order route, X dimension first."""
    sx, sy = src
    dx, dy = dst
    path: List[Coord] = [(x, sy) for x in _straight(sx, dx)]
    path.extend((dx, y) for y in _straight(sy, dy)[1:])
    return path


def yx_path(src: Coord, dst: Coord) -> List[Coord]:
    """Dimension-order route, Y dimension first."""
    sx, sy = src
    dx, dy = dst
    path: List[Coord] = [(sx, y) for y in _straight(sy, dy)]
    path.extend((x, dy) for x in _straight(sx, dx)[1:])
    return path


def o1turn_orientation(src: Coord, dst: Coord, packet_id: int) -> str:
    """The dimension order ('xy' or 'yx') an O1Turn packet uses.

    A multiply-xorshift mix of ``(src, dst, packet_id)`` rather than plain
    packet-id parity: the global packet-id counter gives interleaved traffic
    classes ids of a single parity, and Python's ``hash()`` is unsuitable
    because stability across processes is required for cached/uncached route
    equivalence.
    """
    h = (
        (packet_id * 0x9E3779B1)
        ^ (src[0] * 0x85EBCA6B)
        ^ (src[1] * 0xC2B2AE35)
        ^ (dst[0] * 0x27D4EB2F)
        ^ (dst[1] * 0x165667B1)
    ) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    return "xy" if h & 1 == 0 else "yx"


def o1turn_path(src: Coord, dst: Coord, packet_id: int) -> List[Coord]:
    """O1Turn: each packet picks one of the two dimension orders."""
    if o1turn_orientation(src, dst, packet_id) == "xy":
        return xy_path(src, dst)
    return yx_path(src, dst)


def route_class_direction(algorithm: RoutingAlgorithm, msg_class: MessageClass) -> str:
    """Return 'xy' or 'yx' for class-based algorithms (raises for adaptive ones)."""
    if algorithm is RoutingAlgorithm.XY:
        return "xy"
    if algorithm is RoutingAlgorithm.YX:
        return "yx"
    if algorithm is RoutingAlgorithm.CDR:
        if msg_class in (MessageClass.MEMORY_REQUEST, MessageClass.COHERENCE_REQUEST):
            return "yx"
        return "xy"
    if algorithm is RoutingAlgorithm.CDR_EXTENDED:
        if msg_class is MessageClass.DIRECTORY_SOURCED:
            return "yx"
        return "xy"
    raise RoutingError("algorithm %s does not have a fixed class direction" % algorithm)


def mesh_route(
    algorithm: RoutingAlgorithm,
    src: Coord,
    dst: Coord,
    msg_class: MessageClass,
    packet_id: int = 0,
) -> List[Coord]:
    """Compute the node path for a packet on the mesh under ``algorithm``."""
    if src == dst:
        return [src]
    if algorithm is RoutingAlgorithm.XY:
        return xy_path(src, dst)
    if algorithm is RoutingAlgorithm.YX:
        return yx_path(src, dst)
    if algorithm is RoutingAlgorithm.O1TURN:
        return o1turn_path(src, dst, packet_id)
    if algorithm in (RoutingAlgorithm.CDR, RoutingAlgorithm.CDR_EXTENDED):
        direction = route_class_direction(algorithm, msg_class)
        return xy_path(src, dst) if direction == "xy" else yx_path(src, dst)
    raise RoutingError("unknown routing algorithm %r" % algorithm)


def manhattan_distance(src: Coord, dst: Coord) -> int:
    """Hop count of any minimal route between two mesh coordinates."""
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])


def average_distance_to_column(side: int, column: int) -> float:
    """Average Manhattan X-distance from a uniformly random tile to ``column``."""
    if not 0 <= column < side:
        raise RoutingError("column %d outside a %d-wide mesh" % (column, side))
    return sum(abs(x - column) for x in range(side)) / side


def average_tile_to_tile_distance(side: int) -> float:
    """Average Manhattan distance between two uniformly random tiles."""
    total = 0
    count = 0
    for sx in range(side):
        for sy in range(side):
            for dx in range(side):
                for dy in range(side):
                    total += abs(sx - dx) + abs(sy - dy)
                    count += 1
    return total / count
