"""2D mesh topology (the baseline NOC of Table 2).

Router nodes are ``(x, y)`` coordinates on a ``side x side`` grid.  Column 0
is the chip edge where the NIs and the chip-to-chip network router sit;
column ``side - 1`` is the memory-controller edge (§4.3, Fig. 2).
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.config import MessageClass, NocConfig, RoutingAlgorithm
from repro.errors import TopologyError
from repro.noc.routing import (
    manhattan_distance,
    mesh_route,
    o1turn_orientation,
    route_class_direction,
)
from repro.noc.topology import Link, Topology, build_path_links

Coord = Tuple[int, int]


class MeshTopology(Topology):
    """A square 2D mesh with dimension-order / class-based routing."""

    def __init__(self, side: int, noc_config: NocConfig) -> None:
        if side <= 0:
            raise TopologyError("mesh side must be positive, got %d" % side)
        self.side = side
        self.config = noc_config
        self.hop_cycles = noc_config.mesh_hop_cycles
        self._nodes = [(x, y) for y in range(side) for x in range(side)]
        self._node_set = set(self._nodes)
        # Message class -> fixed dimension order, precomputed for the
        # deterministic algorithms (None for O1Turn, whose orientation is
        # per-packet).  Keyed lookups keep route_cache_key off the
        # route_class_direction call chain on the per-packet path.
        if noc_config.routing is RoutingAlgorithm.O1TURN:
            self._class_directions = None
        else:
            self._class_directions = {
                cls: route_class_direction(noc_config.routing, cls)
                for cls in MessageClass
            }

    # ------------------------------------------------------------------
    # Topology interface
    # ------------------------------------------------------------------
    def nodes(self) -> Iterable[Coord]:
        return list(self._nodes)

    def route(
        self,
        src: Hashable,
        dst: Hashable,
        msg_class: MessageClass,
        packet_id: int = 0,
    ) -> Sequence[Link]:
        self._check(src)
        self._check(dst)
        path = mesh_route(self.config.routing, src, dst, msg_class, packet_id)
        return build_path_links(list(path), self.hop_cycles)

    def route_cache_key(
        self,
        src: Hashable,
        dst: Hashable,
        msg_class: MessageClass,
        packet_id: int = 0,
    ) -> Optional[Hashable]:
        """Memoize per ``(src, dst, dimension order)``.

        XY/YX/CDR/CDR_EXTENDED resolve to a fixed dimension order per message
        class, so the class collapses into the direction; O1Turn picks a
        per-packet orientation, which keys the cache so that both orientations
        of a node pair are cached side by side.
        """
        directions = self._class_directions
        if directions is not None:
            return (src, dst, directions[msg_class])
        return (src, dst, o1turn_orientation(src, dst, packet_id))

    def hop_count(self, src: Coord, dst: Coord) -> int:
        self._check(src)
        self._check(dst)
        return manhattan_distance(src, dst)

    def min_latency_cycles(self, src: Coord, dst: Coord) -> int:
        return self.hop_count(src, dst) * self.hop_cycles

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def tile_coord(self, tile_id: int) -> Coord:
        """Coordinate of core tile ``tile_id`` (row-major numbering)."""
        if not 0 <= tile_id < self.side * self.side:
            raise TopologyError("tile id %d outside the %dx%d mesh" % (tile_id, self.side, self.side))
        return (tile_id % self.side, tile_id // self.side)

    def tile_id(self, coord: Coord) -> int:
        """Inverse of :meth:`tile_coord`."""
        self._check(coord)
        x, y = coord
        return y * self.side + x

    def ni_edge_column(self) -> int:
        """Column hosting the NIs and the network router (west edge)."""
        return 0

    def mc_edge_column(self) -> int:
        """Column hosting the memory controllers (east edge)."""
        return self.side - 1

    def edge_coord_for_row(self, row: int, column: int) -> Coord:
        """Coordinate of the edge tile of ``row`` on ``column``."""
        if not 0 <= row < self.side:
            raise TopologyError("row %d outside the mesh" % row)
        if column not in (self.ni_edge_column(), self.mc_edge_column()):
            raise TopologyError("column %d is not a chip edge" % column)
        return (column, row)

    def bisection_links(self) -> List[Tuple[Coord, Coord]]:
        """Directed links crossing the vertical bisection of the mesh."""
        left = self.side // 2 - 1
        right = self.side // 2
        links: List[Tuple[Coord, Coord]] = []
        for y in range(self.side):
            links.append(((left, y), (right, y)))
            links.append(((right, y), (left, y)))
        return links

    def _check(self, node: Hashable) -> None:
        if node not in self._node_set:
            raise TopologyError("node %r is not part of the %dx%d mesh" % (node, self.side, self.side))
