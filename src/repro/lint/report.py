"""Text and JSON rendering of a lint run."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.lint.finding import Finding

REPORT_SCHEMA = "repro-lint-report/1"


def render_text(findings: Sequence[Finding], files: int, rules: Sequence[str],
                suppressed: int = 0) -> str:
    """One diagnostic line per finding plus a summary line."""
    lines = [finding.format() for finding in findings]
    if findings:
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        breakdown = ", ".join("%s x%d" % (code, counts[code]) for code in sorted(counts))
        summary = "repro lint: %d finding(s) [%s] in %d file(s)" % (
            len(findings), breakdown, files)
    else:
        summary = "repro lint: clean (%d file(s), %d rule(s))" % (files, len(rules))
    if suppressed:
        summary += ", %d suppressed by baseline" % suppressed
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files: int, rules: Sequence[str],
                suppressed: int = 0, root: Optional[str] = None) -> str:
    payload = {
        "schema": REPORT_SCHEMA,
        "root": root,
        "files": files,
        "rules": list(rules),
        "findings": [finding.to_dict() for finding in findings],
        "suppressed": suppressed,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_report(text: str) -> List[Finding]:
    """Findings back out of a ``render_json`` document."""
    payload = json.loads(text)
    return [Finding.from_dict(entry) for entry in payload.get("findings", [])]
