"""Registry-inventory checking, shared by lint rule REP004 and the CI shim.

Two views of the component inventory are validated against
``tests/data/registry_manifest.json``:

* the **static** view — every ``@register_*``/``@experiment`` decorator the
  linter finds in the tree — is checked by :class:`repro.lint.rules
  .RegistryDisciplineRule` (REP004) as part of ``repro lint``;
* the **live** view — what the populated registries actually expose through
  ``repro-experiments list --json`` — is checked by
  :func:`check_live_inventory`, which ``tools/check_registry_manifest.py``
  (now a thin shim) delegates to for CI compatibility.

One module owns the manifest format and the comparison, so the two gates
cannot drift apart.
"""

from __future__ import annotations

import io
import json
import os
import sys
from contextlib import redirect_stdout
from typing import Dict, List, Optional

DEFAULT_MANIFEST = os.path.join("tests", "data", "registry_manifest.json")

#: Manifest inventory keys, in reporting order.
INVENTORY_KEYS = ("designs", "topologies", "workloads", "arrivals", "faults",
                  "lint_rules", "strategies", "probes", "experiments")


def load_manifest(path: str) -> Dict[str, List[str]]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def live_inventory(inventory_path: Optional[str] = None) -> Dict[str, List[str]]:
    """The inventory, from a saved catalog file or the in-process CLI."""
    if inventory_path is not None:
        with open(inventory_path, "r", encoding="utf-8") as handle:
            catalog = json.load(handle)
    else:
        from repro.cli import main

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            status = main(["list", "--json"])
        if status != 0:
            raise SystemExit("repro-experiments list --json failed with status %d" % status)
        catalog = json.loads(buffer.getvalue())
    registries = catalog["registries"]
    inventory = {
        key: [item["name"] for item in registries.get(key, [])]
        for key in INVENTORY_KEYS if key != "experiments"
    }
    inventory["experiments"] = [item["name"] for item in catalog["experiments"]]
    return inventory


def compare_inventory(actual: Dict[str, List[str]],
                      manifest: Dict[str, List[str]]) -> List[str]:
    """Diff-style failure messages; empty when the inventory matches."""
    failures = []
    for key, names in actual.items():
        expected = manifest.get(key, [])
        missing = sorted(set(expected) - set(names))
        extra = sorted(set(names) - set(expected))
        if missing:
            failures.append("%s: missing from the live registry: %s" % (key, ", ".join(missing)))
        if extra:
            failures.append("%s: not in the manifest: %s" % (key, ", ".join(extra)))
    return failures


def check_live_inventory(manifest_path: str,
                         inventory_path: Optional[str] = None) -> int:
    """The CI gate the old ``tools/check_registry_manifest.py`` provided."""
    manifest = load_manifest(manifest_path)
    actual = live_inventory(inventory_path)
    failures = compare_inventory(actual, manifest)
    if failures:
        print("registry inventory drifted from %s" % manifest_path, file=sys.stderr)
        for failure in failures:
            print("  " + failure, file=sys.stderr)
        print("update tests/data/registry_manifest.json if the change is intentional",
              file=sys.stderr)
        return 1
    print("registry inventory matches %s (%s)" % (
        manifest_path,
        ", ".join("%d %s" % (len(actual[key]), key.replace("_", " "))
                  for key in INVENTORY_KEYS)))
    return 0


def main(argv: List[str]) -> int:
    """CLI used by the ``tools/check_registry_manifest.py`` shim."""
    inventory_path = None
    if "--inventory" in argv:
        index = argv.index("--inventory")
        try:
            inventory_path = argv[index + 1]
        except IndexError:
            raise SystemExit("--inventory requires a path argument")
        argv = argv[:index] + argv[index + 2:]
    manifest_path = argv[0] if argv else DEFAULT_MANIFEST
    return check_live_inventory(manifest_path, inventory_path)
