"""The :class:`Finding` record every lint rule emits.

A finding pins one contract violation to a source location: the rule code
(``REP001``..), the path relative to the linted root, the line/column, a
human-readable message and a pointer into the rule documentation.  Findings
are JSON round-trippable (the ``--json`` reporter and the suppressions
baseline both serialize them) and totally ordered by ``(path, line, col,
code)`` so reports are deterministic regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Rule code, e.g. ``"REP002"``.
    code: str
    #: Path of the offending file, relative to the linted root (posix form).
    path: str
    #: 1-indexed source line (0 for whole-file findings).
    line: int
    #: 0-indexed column offset.
    col: int
    #: What is wrong and what to do instead.
    message: str
    #: Pointer to the rule's documentation (README anchor).
    doc_url: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def location(self) -> str:
        """``path:line:col`` in the conventional compiler-diagnostic form."""
        return "%s:%d:%d" % (self.path, self.line, self.col)

    def format(self) -> str:
        """One diagnostic line: ``path:line:col: CODE message (see doc)``."""
        text = "%s: %s %s" % (self.location(), self.code, self.message)
        if self.doc_url:
            text += " (see %s)" % self.doc_url
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "doc_url": self.doc_url,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Finding":
        return cls(
            code=str(payload.get("code", "")),
            path=str(payload.get("path", "")),
            line=int(payload.get("line", 0)),
            col=int(payload.get("col", 0)),
            message=str(payload.get("message", "")),
            doc_url=str(payload.get("doc_url", "")),
        )
