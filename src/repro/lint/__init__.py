"""repro.lint — AST-based determinism & kernel-contract linter.

The sixth component registry: named static-analysis rules (REP001–REP007,
plus any ``@register_lint_rule`` plugin) that machine-check the contracts
every reproduced figure rests on — seeded randomness, no wall-clock reads on
simulation paths, deterministic iteration in the kernel, manifest-gated
component registration, the non-cancellable ``schedule_fast`` contract,
``__slots__`` integrity on hot-path classes, and fingerprint-stable
serialization of optional spec keys.

Typical use::

    from repro.lint import lint_paths
    findings = lint_paths(["src/repro"])          # [] when the tree is clean

or from the CLI::

    repro-experiments lint src/repro --json -
    repro-experiments lint src/repro --rules REP001,REP002
    repro-experiments lint src/repro --baseline tools/lint_baseline.json

Rules are purely syntactic (the tree is parsed, never imported or executed)
and run in a single parse pass per file; see :mod:`repro.lint.driver`.
"""

from repro.lint.baseline import BASELINE_SCHEMA, Baseline
from repro.lint.driver import (
    LintContext,
    LintModule,
    discover_manifest,
    iter_python_files,
    lint_paths,
    resolve_rules,
)
from repro.lint.finding import Finding
from repro.lint.report import REPORT_SCHEMA, parse_report, render_json, render_text
from repro.lint.rules import LintRule
from repro.scenario.registry import LINT_RULES, register_lint_rule

__all__ = [
    "BASELINE_SCHEMA",
    "Baseline",
    "Finding",
    "LINT_RULES",
    "LintContext",
    "LintModule",
    "LintRule",
    "REPORT_SCHEMA",
    "discover_manifest",
    "iter_python_files",
    "lint_paths",
    "parse_report",
    "register_lint_rule",
    "render_json",
    "render_text",
    "resolve_rules",
]
