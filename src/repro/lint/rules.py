"""The built-in determinism & kernel-contract lint rules (REP001–REP008).

Each rule is a :class:`LintRule` subclass registered under its code through
:func:`repro.scenario.registry.register_lint_rule` — the same decorator
registry pattern as the NI designs, topologies, workloads, arrival processes
and fault models, so third-party checks plug in without editing this module.
Rules are purely syntactic: they inspect the :class:`~repro.lint.driver
.LintModule` index built by the driver's single parse pass and never import
or execute the code under analysis.

The contracts enforced here are the ones every reproduced figure rests on:
all randomness is seeded, simulation paths never read wall clocks, iteration
in the kernel is deterministically ordered, components register through the
manifest-gated registries, ``schedule_fast`` events are never cancelled,
``__slots__`` classes stay dict-free, and spec documents only serialize
optional registry keys when they are set (fingerprint stability), and
telemetry probes observe the simulation without mutating it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.driver import LintContext, LintModule
from repro.lint.finding import Finding
from repro.scenario.registry import register_lint_rule


class LintRule:
    """Base class for lint rules.

    Subclasses set :attr:`code`/:attr:`title`, implement :meth:`check` (one
    call per parsed module) and may implement :meth:`finish` (one call after
    every module has been seen — for whole-tree invariants).  Instances are
    created fresh for every run, so per-run state lives on ``self``.
    """

    code: str = ""
    title: str = ""

    @property
    def doc_url(self) -> str:
        """README anchor documenting this rule."""
        slug = ("%s %s" % (self.code, self.title)).lower().replace(" ", "-")
        return "README.md#%s" % slug

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        return iter(())

    def finish(self, context: LintContext) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: Optional[LintModule], node: Optional[ast.AST],
                message: str, path: Optional[str] = None) -> Finding:
        """Build a finding at ``node`` (or a whole-file finding)."""
        return Finding(
            code=self.code,
            path=path if path is not None else module.relpath,
            line=getattr(node, "lineno", 0) if node is not None else 0,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            message=message,
            doc_url=self.doc_url,
        )


# ----------------------------------------------------------------------
# REP001 — wall-clock ban
# ----------------------------------------------------------------------
@register_lint_rule("REP001", title="wall-clock ban")
class WallClockRule(LintRule):
    """Simulation code must never read host wall-clock time.

    Simulated time comes from ``Simulator.now``; a wall-clock read anywhere
    on a simulation path makes results depend on host speed and breaks
    byte-identity.  Only the perf-measurement and campaign-metadata modules
    (which report how long real runs took) are allowed to read clocks.
    """

    code = "REP001"
    title = "wall-clock ban"

    #: Clock-reading callables, as canonical dotted names.
    BANNED = frozenset({
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    #: Modules (relative to the linted root) that measure wall time on
    #: purpose: the perf-counter session and campaign/run metadata writers.
    ALLOWED_MODULES = frozenset({
        "sim/perf.py",
        "campaign/runner.py",
        "scenario/builder.py",
        "experiments/spec.py",
    })

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        if module.relpath in self.ALLOWED_MODULES:
            return
        for call in module.of_type(ast.Call):
            name = module.qualified_name(call.func)
            if name in self.BANNED:
                yield self.finding(
                    module, call,
                    "wall-clock read %s() on a simulation path; use Simulator.now "
                    "for simulated time (wall time belongs in the perf/campaign "
                    "metadata modules only)" % name,
                )


# ----------------------------------------------------------------------
# REP002 — unseeded randomness
# ----------------------------------------------------------------------
@register_lint_rule("REP002", title="unseeded randomness")
class UnseededRandomRule(LintRule):
    """All randomness must flow through a seeded ``random.Random`` instance.

    Calls on the ``random`` module's global (hidden, shared, unseeded) RNG —
    or on ``random.SystemRandom`` — make runs irreproducible and poison every
    content-hash cache entry downstream.  Construct ``random.Random(seed)``
    and call methods on the instance instead.
    """

    code = "REP002"
    title = "unseeded randomness"

    #: The only attribute of the random module that may be called directly.
    ALLOWED_ATTRS = frozenset({"Random"})

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        for imp in module.of_type(ast.ImportFrom):
            if imp.module == "random" and not imp.level:
                for alias in imp.names:
                    if alias.name not in self.ALLOWED_ATTRS:
                        yield self.finding(
                            module, imp,
                            "'from random import %s' binds the shared global RNG; "
                            "import the module and use a seeded random.Random(seed) "
                            "instance instead" % alias.name,
                        )
        for call in module.of_type(ast.Call):
            name = module.qualified_name(call.func)
            if name is None or not name.startswith("random."):
                continue
            attr = name.partition(".")[2]
            if attr and attr not in self.ALLOWED_ATTRS:
                yield self.finding(
                    module, call,
                    "call to the module-level random.%s() (unseeded shared RNG); "
                    "use a seeded random.Random(seed) instance" % attr,
                )


# ----------------------------------------------------------------------
# REP003 — nondeterministic iteration
# ----------------------------------------------------------------------
@register_lint_rule("REP003", title="nondeterministic iteration")
class NondetIterationRule(LintRule):
    """Kernel/fabric modules must not iterate unordered collections.

    Iterating a ``set``/``frozenset`` (or an object's ``__dict__``/``vars``)
    visits elements in hash order, which varies with insertion history and
    ``PYTHONHASHSEED`` for str-keyed data — event order then differs between
    otherwise identical runs.  Wrap the iterable in ``sorted(...)`` in the
    simulation kernel, NOC and fabric modules.
    """

    code = "REP003"
    title = "nondeterministic iteration"

    #: Module prefixes (relative to the linted root) where iteration order
    #: feeds event order and must be deterministic.
    TARGET_PREFIXES = ("sim/", "noc/", "fabric/")

    def _is_unordered(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("set", "frozenset"):
                return "%s(...)" % expr.func.id
            if expr.func.id == "vars":
                return "vars(...)"
        if isinstance(expr, ast.Attribute) and expr.attr == "__dict__":
            return "__dict__"
        return None

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        if not module.relpath.startswith(self.TARGET_PREFIXES):
            return
        iterables: List[ast.AST] = [
            loop.iter for loop in module.of_type(ast.For, ast.AsyncFor)
        ]
        for comp in module.of_type(ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp):
            iterables.extend(generator.iter for generator in comp.generators)
        for expr in iterables:
            what = self._is_unordered(expr)
            if what is not None:
                yield self.finding(
                    module, expr,
                    "iteration over %s is hash-ordered and nondeterministic in a "
                    "kernel module; wrap it in sorted(...)" % what,
                )


# ----------------------------------------------------------------------
# REP004 — registry discipline
# ----------------------------------------------------------------------
@register_lint_rule("REP004", title="registry discipline")
class RegistryDisciplineRule(LintRule):
    """Components register through the registries and the manifest gates them.

    Every ``@register_*``-decorated component (and ``@experiment`` runner)
    must appear in ``tests/data/registry_manifest.json``; on whole-package
    runs the reverse also holds (manifest names must be registered
    somewhere).  ``core/factory.py`` must stay free of name-dispatch
    branches — an ``if name == "..."`` chain there is the pre-registry
    pattern the registries replaced.
    """

    code = "REP004"
    title = "registry discipline"

    #: Registration decorator → manifest inventory key.
    REGISTRARS: Dict[str, str] = {
        "register_ni_design": "designs",
        "register_topology": "topologies",
        "register_workload": "workloads",
        "register_arrival_process": "arrivals",
        "register_fault_model": "faults",
        "register_lint_rule": "lint_rules",
        "register_strategy": "strategies",
        "register_probe": "probes",
        "experiment": "experiments",
    }

    def __init__(self) -> None:
        #: (manifest key, component name, module relpath, decorator node).
        self.registrations: List[Tuple[str, str, str, ast.AST]] = []
        self._pending: List[Tuple[LintModule, ast.AST, str]] = []

    @staticmethod
    def _decorator_component_name(call: ast.Call) -> Optional[str]:
        if call.args and isinstance(call.args[0], ast.Constant) \
                and isinstance(call.args[0].value, str):
            return call.args[0].value
        for keyword in call.keywords:
            if keyword.arg == "name" and isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, str):
                return keyword.value.value
        return None

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        for node in module.of_type(ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef):
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                func = decorator.func
                registrar = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                key = self.REGISTRARS.get(registrar or "")
                if key is None:
                    continue
                name = self._decorator_component_name(decorator)
                if name is None:
                    yield self.finding(
                        module, decorator,
                        "@%s registration name is not a string literal, so the "
                        "manifest gate cannot see it" % registrar,
                    )
                    continue
                self.registrations.append((key, name, module.relpath, decorator))
        if module.relpath == "core/factory.py":
            for branch in module.of_type(ast.If):
                for finding in self._dispatch_branch(module, branch):
                    yield finding

    def _dispatch_branch(self, module: LintModule, branch: ast.If) -> Iterator[Finding]:
        test = branch.test
        if not isinstance(test, ast.Compare):
            return
        operands = [test.left] + list(test.comparators)
        has_name = any(isinstance(op, (ast.Name, ast.Attribute)) for op in operands)
        has_literal = any(
            isinstance(op, ast.Constant) and isinstance(op.value, str) for op in operands
        )
        if has_name and has_literal:
            yield self.finding(
                module, branch,
                "string-dispatch branch in core/factory.py; components must be "
                "resolved through the component registries, not if/elif chains",
            )

    def finish(self, context: LintContext) -> Iterator[Finding]:
        manifest = context.manifest
        if manifest is None:
            return
        for key, name, relpath, node in self.registrations:
            if name not in manifest.get(key, []):
                yield self.finding(
                    None, node,
                    "%s %r is registered here but missing from the manifest's "
                    "%r inventory; update tests/data/registry_manifest.json"
                    % (key.rstrip("s").replace("_", " "), name, key),
                    path=relpath,
                )
        if not context.whole_package:
            return
        registered: Dict[str, Set[str]] = {}
        for key, name, _relpath, _node in self.registrations:
            registered.setdefault(key, set()).add(name)
        manifest_path = (context.manifest_path or "registry manifest").replace("\\", "/")
        for key in self.REGISTRARS.values():
            for name in manifest.get(key, []):
                if name not in registered.get(key, set()):
                    yield self.finding(
                        None, None,
                        "manifest lists %s %r but no @%s registration exists in "
                        "the linted tree; remove it from the manifest or restore "
                        "the component"
                        % (key, name,
                           {v: k for k, v in self.REGISTRARS.items()}[key]),
                        path=manifest_path,
                    )


# ----------------------------------------------------------------------
# REP005 — schedule_fast contract
# ----------------------------------------------------------------------
@register_lint_rule("REP005", title="schedule_fast contract")
class ScheduleFastRule(LintRule):
    """``schedule_fast`` events are non-cancellable — never cancel them.

    The allocation-free fast path pushes a bare tuple and returns no handle:
    assigning its (None) result, or passing the same callable both to
    ``schedule_fast`` and to ``Simulator.cancel`` within one class, means the
    code believes the event can be revoked.  Use ``schedule`` (which returns
    an :class:`Event`) wherever a caller might cancel.
    """

    code = "REP005"
    title = "schedule_fast contract"

    @staticmethod
    def _scope(module: LintModule, node: ast.AST) -> Optional[ast.AST]:
        return module.enclosing(node, ast.ClassDef)

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        scheduled: Dict[Optional[ast.AST], Dict[str, ast.AST]] = {}
        cancelled: Dict[Optional[ast.AST], Dict[str, ast.AST]] = {}
        for call in module.of_type(ast.Call):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "schedule_fast":
                parent = module.parents.get(call)
                if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.NamedExpr)) \
                        and getattr(parent, "value", None) is call:
                    yield self.finding(
                        module, parent,
                        "schedule_fast returns no handle (always None); events on "
                        "the fast path cannot be cancelled — use schedule() if "
                        "you need the Event",
                    )
                if len(call.args) >= 2:
                    text = ast.unparse(call.args[1])
                    scheduled.setdefault(self._scope(module, call), {})[text] = call
            elif func.attr == "cancel" and call.args:
                text = ast.unparse(call.args[0])
                cancelled.setdefault(self._scope(module, call), {})[text] = call
        for scope, by_text in cancelled.items():
            for text, call in sorted(by_text.items()):
                if text in scheduled.get(scope, {}):
                    yield self.finding(
                        module, call,
                        "%r is passed to schedule_fast and also to cancel(); "
                        "fast-path events are non-cancellable — schedule it with "
                        "schedule() instead" % text,
                    )


# ----------------------------------------------------------------------
# REP006 — __slots__ integrity
# ----------------------------------------------------------------------
@register_lint_rule("REP006", title="__slots__ integrity")
class SlotsIntegrityRule(LintRule):
    """Slotted hot-path classes must stay slotted, all the way down.

    Assigning a ``self`` attribute that no ``__slots__`` declaration covers
    raises at runtime on a properly slotted class — and a subclass that
    omits ``__slots__`` silently reintroduces a per-instance ``__dict__``,
    undoing the allocation wins slots were added for.  The rule resolves
    base classes by name across the linted tree; classes with unresolvable
    (external) bases are skipped rather than guessed at.
    """

    code = "REP006"
    title = "__slots__ integrity"

    def __init__(self) -> None:
        #: Class name → (module, node, declared slots or None, base names);
        #: a name seen twice maps to None (ambiguous, skipped).
        self.classes: Dict[str, Optional[Tuple[LintModule, ast.ClassDef,
                                               Optional[Set[str]], List[str]]]] = {}

    @staticmethod
    def _declared_slots(node: ast.ClassDef) -> Optional[Set[str]]:
        for statement in node.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                targets, value = [statement.target], statement.value
            if not any(isinstance(t, ast.Name) and t.id == "__slots__" for t in targets):
                continue
            try:
                literal = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                return set()  # dynamic __slots__: treat as present but unknowable
            if isinstance(literal, str):
                return {literal}
            return {str(item) for item in literal}
        return None

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        for node in module.of_type(ast.ClassDef):
            bases: List[str] = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
                else:
                    bases.append("?")
            record = (module, node, self._declared_slots(node), bases)
            self.classes[node.name] = None if node.name in self.classes else record
        return iter(())

    def _resolve_slots(self, name: str, seen: Set[str]) -> Tuple[Set[str], bool]:
        """Union of slots declared by ``name`` and its in-tree bases.

        The bool is False when any base is external/ambiguous/unslotted —
        i.e. when the class may legitimately have a ``__dict__``.
        """
        if name in seen:
            return set(), False
        seen.add(name)
        record = self.classes.get(name)
        if record is None:
            return set(), False
        _module, _node, slots, bases = record
        if slots is None:
            return set(), False
        total, closed = set(slots), True
        for base in bases:
            if base == "object":
                continue
            base_slots, base_closed = self._resolve_slots(base, seen)
            total |= base_slots
            closed = closed and base_closed
        return total, closed

    def finish(self, context: LintContext) -> Iterator[Finding]:
        for name in sorted(self.classes):
            record = self.classes[name]
            if record is None:
                continue
            module, node, slots, bases = record
            slotted_bases = [
                base for base in bases
                if self.classes.get(base) is not None
                and base in self.classes
                and self.classes[base][2] is not None
            ]
            if slots is None:
                # Subclass of slotted base(s) without __slots__: only flag
                # when every base is in-tree and slotted (an external or
                # unslotted base already brings a __dict__ of its own).
                if bases and len(slotted_bases) == len(bases) and all(
                    self._resolve_slots(base, set())[1] for base in bases
                ):
                    yield self.finding(
                        module, node,
                        "class %s subclasses slotted base(s) %s but declares no "
                        "__slots__, silently reintroducing a per-instance "
                        "__dict__; add __slots__ = (...) (empty is fine)"
                        % (name, ", ".join(bases)),
                    )
                continue
            total, closed = self._resolve_slots(name, set())
            if not closed:
                continue
            for sub in ast.walk(node):
                targets: List[ast.AST] = []
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    if isinstance(sub, ast.AnnAssign) and sub.value is None:
                        continue
                    targets = [sub.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self" \
                            and target.attr not in total:
                        yield self.finding(
                            module, target,
                            "self.%s is assigned in slotted class %s but is not "
                            "declared in __slots__ (this raises AttributeError "
                            "at runtime); add it to __slots__" % (target.attr, name),
                        )


# ----------------------------------------------------------------------
# REP007 — serialization hygiene
# ----------------------------------------------------------------------
@register_lint_rule("REP007", title="serialization hygiene")
class SerializationHygieneRule(LintRule):
    """Optional registry keys serialize only when set (fingerprint stability).

    Spec/result documents feed content-hash fingerprints: emitting an
    optional key (``arrivals``/``faults``/their params) unconditionally —
    even as ``None`` — changes the serialized form of every pre-existing
    document, invalidating cached campaign results and breaking the
    closed-loop/fault-free byte-identity guarantees.  Guard the emission
    with an ``if`` on the field being set.
    """

    code = "REP007"
    title = "serialization hygiene"

    #: Keys that must only appear in a document when their subsystem is in
    #: play; serializing them unconditionally changes historic fingerprints.
    OPTIONAL_KEYS = frozenset({"arrivals", "arrival_params", "faults", "fault_params"})

    def _is_conditional(self, module: LintModule, node: ast.AST,
                        method: ast.AST) -> bool:
        for ancestor in module.ancestors(node):
            if ancestor is method:
                return False
            if isinstance(ancestor, (ast.If, ast.IfExp)):
                return True
        return False

    @staticmethod
    def _optional_fields(class_node: ast.ClassDef) -> Set[str]:
        """Field names the class declares as optional (None default/Optional).

        A key is only a fingerprint hazard when the producing class can
        leave it unset — ``OpenLoopResult.arrivals`` (a required ``str``)
        may serialize unconditionally, ``ScenarioSpec.arrivals``
        (``Optional[str] = None``) may not.
        """
        optional: Set[str] = set()
        for statement in class_node.body:
            name: Optional[str] = None
            annotation: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
                name, annotation, value = statement.target.id, statement.annotation, statement.value
            elif isinstance(statement, ast.Assign) and len(statement.targets) == 1 \
                    and isinstance(statement.targets[0], ast.Name):
                name, value = statement.targets[0].id, statement.value
            if name is None:
                continue
            if isinstance(value, ast.Constant) and value.value is None:
                optional.add(name)
            elif annotation is not None and "Optional" in ast.unparse(annotation):
                optional.add(name)
        return optional

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        for method in module.of_type(ast.FunctionDef, ast.AsyncFunctionDef):
            if method.name != "to_dict":
                continue
            owner = module.enclosing(method, ast.ClassDef)
            if owner is None:
                continue
            hazards = self.OPTIONAL_KEYS & self._optional_fields(owner)
            if not hazards:
                continue
            for sub in ast.walk(method):
                key: Optional[str] = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                        and isinstance(sub.targets[0], ast.Subscript) \
                        and isinstance(sub.targets[0].slice, ast.Constant) \
                        and sub.targets[0].slice.value in hazards:
                    key = sub.targets[0].slice.value
                elif isinstance(sub, ast.Dict):
                    for dict_key in sub.keys:
                        if isinstance(dict_key, ast.Constant) \
                                and dict_key.value in hazards \
                                and not self._is_conditional(module, sub, method):
                            yield self.finding(
                                module, sub,
                                "to_dict emits optional key %r unconditionally; "
                                "serialize it only when the field is set, or "
                                "every pre-existing fingerprint changes"
                                % dict_key.value,
                            )
                    continue
                if key is not None and not self._is_conditional(module, sub, method):
                    yield self.finding(
                        module, sub,
                        "to_dict emits optional key %r unconditionally; serialize "
                        "it only when the field is set, or every pre-existing "
                        "fingerprint changes" % key,
                    )


@register_lint_rule("REP008", title="probe contract")
class ProbeContractRule(LintRule):
    """Telemetry probes observe the simulation; they never mutate it.

    A probe registered through ``@register_probe`` runs inside the event
    loop of the very simulation it reports on: an attribute write on any
    sampled object — the simulator, driver, fabric, fault state, anything
    reached through the :class:`~repro.obs.probes.ProbeContext` — silently
    perturbs the run it is supposed to be observing and breaks the
    obs-disabled byte-identity contract.  Assignments rooted at ``self``
    (probe-local state such as last-sample counters) are the only writes a
    probe may perform.  Probes must also declare ``__slots__`` so per-tick
    sampling never allocates a per-instance ``__dict__``.
    """

    code = "REP008"
    title = "probe contract"

    @staticmethod
    def _is_probe(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            if isinstance(func, ast.Name) and func.id == "register_probe":
                return True
            if isinstance(func, ast.Attribute) and func.attr == "register_probe":
                return True
        return False

    @staticmethod
    def _rooted_at_self(target: ast.Attribute) -> bool:
        """Whether the write lands directly on ``self`` (``self.x = ...``).

        A chained write like ``self.driver.x = ...`` mutates a sampled
        object *through* probe state and is still a violation, so only a
        bare ``self.<attr>`` target qualifies.
        """
        return isinstance(target.value, ast.Name) and target.value.id == "self"

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        for node in module.of_type(ast.ClassDef):
            if not self._is_probe(node):
                continue
            if SlotsIntegrityRule._declared_slots(node) is None:
                yield self.finding(
                    module, node,
                    "probe class %s declares no __slots__; probes are "
                    "instantiated per session and sampled per tick — declare "
                    "__slots__ (use () for stateless probes)" % node.name,
                )
            for sub in ast.walk(node):
                targets: List[ast.AST] = []
                if isinstance(sub, ast.Assign):
                    targets = list(sub.targets)
                elif isinstance(sub, ast.AugAssign):
                    targets = [sub.target]
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    targets = [sub.target]
                elif isinstance(sub, ast.Delete):
                    targets = list(sub.targets)
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and not self._rooted_at_self(target):
                        yield self.finding(
                            module, sub,
                            "probe %s writes attribute %r on a sampled "
                            "object; probes must be read-only outside self"
                            % (node.name, ast.unparse(target)),
                        )


# ----------------------------------------------------------------------
# REP009 — fault-model seed derivation
# ----------------------------------------------------------------------
@register_lint_rule("REP009", title="fault-model seed derivation")
class FaultSeedDerivationRule(LintRule):
    """Fault-model code derives every RNG seed through ``derive_seed``.

    The fault engine runs several seeded streams off one driver seed —
    model target selection, the window schedule, cascade triggers.  A model
    module that feeds ``random.Random`` a raw seed (``random.Random(
    self.seed)``, or worse a literal) re-correlates those streams: two
    components sharing a seed value draw identical sequences and the
    "independent" faults move in lockstep.  In any module registering a
    fault model (``@register_fault_model``), every ``random.Random(...)``
    call must take a ``faults.injector.derive_seed(...)`` result as its
    seed argument.
    """

    code = "REP009"
    title = "fault-model seed derivation"

    @staticmethod
    def _registers_fault_model(module: LintModule) -> bool:
        for node in module.of_type(ast.ClassDef):
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                func = decorator.func
                if isinstance(func, ast.Name) and func.id == "register_fault_model":
                    return True
                if isinstance(func, ast.Attribute) and func.attr == "register_fault_model":
                    return True
        return False

    @staticmethod
    def _is_derived_seed(arg: ast.AST) -> bool:
        if not isinstance(arg, ast.Call):
            return False
        func = arg.func
        if isinstance(func, ast.Name):
            return func.id == "derive_seed"
        if isinstance(func, ast.Attribute):
            return func.attr == "derive_seed"
        return False

    def check(self, module: LintModule, context: LintContext) -> Iterator[Finding]:
        if not self._registers_fault_model(module):
            return
        for call in module.of_type(ast.Call):
            if module.qualified_name(call.func) != "random.Random":
                continue
            if call.args and self._is_derived_seed(call.args[0]):
                continue
            yield self.finding(
                module, call,
                "fault-model module seeds random.Random with a raw value; "
                "pass faults.injector.derive_seed(seed, kind, name) so the "
                "engine's seeded streams stay decorrelated",
            )
