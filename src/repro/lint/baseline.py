"""Suppressions baseline: adopt the linter without fixing history first.

A baseline file records findings that are acknowledged but not yet fixed;
``repro lint --baseline FILE`` subtracts them from the report so the CI gate
only fails on *new* violations.  Suppressions match on ``(code, path,
message)`` — line numbers are deliberately ignored so unrelated edits above
a suppressed finding don't resurrect it.  An entry may omit ``message`` to
suppress every finding of that code in that file.

The checked-in baseline (``tools/lint_baseline.json``) is empty: the tree
lints clean, and the file exists so the CI gate's invocation shape never
changes when a suppression is temporarily needed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LintError
from repro.lint.finding import Finding

BASELINE_SCHEMA = "repro-lint-baseline/1"


class Baseline:
    """A set of suppressed findings, loaded from / saved to JSON."""

    def __init__(self, suppressions: Optional[Sequence[Dict[str, object]]] = None) -> None:
        #: Entries of the form {"code", "path", optional "message"}.
        self.suppressions: List[Dict[str, str]] = [
            {key: str(value) for key, value in entry.items()
             if key in ("code", "path", "message")}
            for entry in (suppressions or [])
        ]

    def __len__(self) -> int:
        return len(self.suppressions)

    def matches(self, finding: Finding) -> bool:
        for entry in self.suppressions:
            if entry.get("code") != finding.code or entry.get("path") != finding.path:
                continue
            if "message" not in entry or entry["message"] == finding.message:
                return True
        return False

    def apply(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into ``(kept, suppressed)``."""
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            (suppressed if self.matches(finding) else kept).append(finding)
        return kept, suppressed

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"schema": BASELINE_SCHEMA, "suppressions": list(self.suppressions)}

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls([
            {"code": finding.code, "path": finding.path, "message": finding.message}
            for finding in sorted(findings, key=Finding.sort_key)
        ])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise LintError("cannot read lint baseline %s: %s" % (path, exc))
        except ValueError as exc:
            raise LintError("lint baseline %s is not valid JSON: %s" % (path, exc))
        if not isinstance(payload, dict) or "suppressions" not in payload:
            raise LintError(
                "lint baseline %s is missing the 'suppressions' list "
                "(expected schema %s)" % (path, BASELINE_SCHEMA)
            )
        return cls(payload["suppressions"])
