"""Single-pass lint driver: parse each file once, feed every rule.

The driver walks the requested paths, parses each ``.py`` file with
:mod:`ast` exactly once and wraps it in a :class:`LintModule` — a prebuilt
index (parent links, nodes grouped by type, import aliases) that every rule
shares, so adding a rule never adds a tree traversal.  Rules come from the
``LINT_RULES`` component registry (:func:`repro.scenario.registry
.register_lint_rule`); each is instantiated fresh per run, sees every module
through :meth:`~repro.lint.rules.LintRule.check`, and may emit tree-wide
findings from :meth:`~repro.lint.rules.LintRule.finish` (used by the
registry-discipline rule, which needs the whole tree before it can compare
against the manifest).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.errors import LintError
from repro.lint.finding import Finding
from repro.scenario.registry import LINT_RULES

#: Rule code attached to files the driver itself cannot parse.
SYNTAX_ERROR_CODE = "REP000"

#: File name of the checked-in registry inventory, discovered by walking up
#: from the linted root (see :func:`discover_manifest`).
_MANIFEST_RELPATH = os.path.join("tests", "data", "registry_manifest.json")


class LintModule:
    """One parsed source file plus the shared single-pass index.

    The constructor performs the only full walk of the tree: it records each
    node's parent, groups nodes by type and resolves import aliases
    (``import random as rnd`` → ``rnd`` maps to ``random``;
    ``from time import perf_counter`` → ``perf_counter`` maps to
    ``time.perf_counter``).  Rules then query the index instead of walking.
    """

    __slots__ = ("path", "relpath", "source", "tree", "parents", "nodes",
                 "module_aliases", "from_imports")

    def __init__(self, path: str, relpath: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath.replace(os.sep, "/")
        self.source = source
        self.tree = tree
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.nodes: Dict[type, List[ast.AST]] = {}
        #: Local name → imported module path (``import x.y as z`` → z: x.y).
        self.module_aliases: Dict[str, str] = {}
        #: Local name → dotted origin (``from m import n as a`` → a: m.n).
        self.from_imports: Dict[str, str] = {}
        for parent in ast.walk(tree):
            self.nodes.setdefault(type(parent), []).append(parent)
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
            if isinstance(parent, ast.Import):
                for alias in parent.names:
                    self.module_aliases[alias.asname or alias.name.partition(".")[0]] = alias.name
            elif isinstance(parent, ast.ImportFrom) and parent.module and not parent.level:
                for alias in parent.names:
                    self.from_imports[alias.asname or alias.name] = (
                        "%s.%s" % (parent.module, alias.name)
                    )

    # ------------------------------------------------------------------
    # Index queries
    # ------------------------------------------------------------------
    def of_type(self, *types: type) -> List[ast.AST]:
        """Every node of the given AST type(s), in source order of discovery."""
        found: List[ast.AST] = []
        for node_type in types:
            found.extend(self.nodes.get(node_type, []))
        return found

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """The parent chain of ``node``, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing(self, node: ast.AST, *types: type) -> Optional[ast.AST]:
        """The nearest ancestor of one of the given types, or None."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, types):
                return ancestor
        return None

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """A call target as a canonical dotted name, or None.

        Resolves through the module's import aliases, so ``perf_counter()``
        after ``from time import perf_counter`` and ``t.perf_counter()``
        after ``import time as t`` both yield ``"time.perf_counter"``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = current.id
        origin = self.from_imports.get(root) or self.module_aliases.get(root, root)
        parts.append(origin)
        return ".".join(reversed(parts))


class LintContext:
    """Run-wide state shared by every rule: the root, manifest, modules."""

    def __init__(self, root: str, manifest_path: Optional[str],
                 manifest: Optional[Dict[str, List[str]]]) -> None:
        self.root = root
        self.manifest_path = manifest_path
        self.manifest = manifest
        #: Whether the linted root looks like the whole ``repro`` package
        #: (the registry-discipline rule only cross-checks the manifest's
        #: reverse direction — names registered nowhere — on full-tree runs).
        self.whole_package = os.path.isfile(os.path.join(root, "core", "factory.py"))
        self.modules: List[LintModule] = []


def discover_manifest(root: str) -> Optional[str]:
    """Walk up from ``root`` looking for ``tests/data/registry_manifest.json``."""
    current = os.path.abspath(root)
    for _ in range(8):
        candidate = os.path.join(current, _MANIFEST_RELPATH)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            break
        current = parent
    return None


def iter_python_files(paths: Sequence[str]) -> Tuple[str, List[str]]:
    """Resolve the requested paths to ``(root, sorted .py files)``."""
    if not paths:
        raise LintError("no paths to lint")
    absolute = [os.path.abspath(path) for path in paths]
    for path in absolute:
        if not os.path.exists(path):
            raise LintError("lint path %s does not exist" % path)
    roots = [path if os.path.isdir(path) else os.path.dirname(path) for path in absolute]
    root = roots[0] if len(roots) == 1 else os.path.commonpath(roots)
    files: List[str] = []
    for path in absolute:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if not d.startswith((".", "__pycache__")))
                files.extend(os.path.join(dirpath, name)
                             for name in sorted(filenames) if name.endswith(".py"))
        elif path.endswith(".py"):
            files.append(path)
    return root, sorted(dict.fromkeys(files))


def resolve_rules(codes: Optional[Sequence[str]] = None) -> List[object]:
    """Instantiate the selected rules (all registered rules by default)."""
    names = list(codes) if codes else LINT_RULES.names()
    return [LINT_RULES.get(name)() for name in names]


def lint_paths(paths: Sequence[str], rules: Optional[Sequence[str]] = None,
               manifest_path: Optional[str] = None) -> List[Finding]:
    """Lint the given files/directories and return sorted findings.

    ``rules`` selects a subset by code (default: every registered rule);
    ``manifest_path`` overrides the upward search for the registry manifest
    (pass a path for fixture trees, or rely on discovery for real runs).
    """
    root, files = iter_python_files(paths)
    if manifest_path is None:
        manifest_path = discover_manifest(root)
    manifest = None
    if manifest_path is not None:
        import json

        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise LintError("cannot read registry manifest %s: %s" % (manifest_path, exc))
    context = LintContext(root, manifest_path, manifest)
    active = resolve_rules(rules)
    findings: List[Finding] = []
    for path in files:
        relpath = os.path.relpath(path, root)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except OSError as exc:
            raise LintError("cannot read %s: %s" % (path, exc))
        except SyntaxError as exc:
            findings.append(Finding(
                code=SYNTAX_ERROR_CODE, path=relpath.replace(os.sep, "/"),
                line=exc.lineno or 0, col=(exc.offset or 1) - 1,
                message="file does not parse: %s" % exc.msg,
            ))
            continue
        module = LintModule(path, relpath, source, tree)
        context.modules.append(module)
        for rule in active:
            findings.extend(rule.check(module, context))
    for rule in active:
        findings.extend(rule.finish(context))
    return sorted(findings, key=Finding.sort_key)
