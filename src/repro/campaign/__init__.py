"""Parallel experiment campaigns.

A campaign turns declarative :class:`~repro.experiments.spec.ExperimentSpec`
parameter grids into concrete :class:`RunRequest` objects, executes them —
sequentially or across a :class:`concurrent.futures.ProcessPoolExecutor` —
behind a content-hash :class:`ResultCache`, and aggregates the outcomes
into a :class:`CampaignReport` that serializes to JSON/CSV.

Typical use::

    from repro.campaign import Campaign, ResultCache, expand_grid

    requests = expand_grid("fig6", {"design": ["edge", "split", "per_tile"]})
    report = Campaign(requests, cache=ResultCache(), max_workers=4).run()
    print(report.format())
    report.write_json("fig6_sweep.json")
"""

from repro.campaign.cache import ResultCache
from repro.campaign.grid import expand_grid, parse_sweep_axes
from repro.campaign.report import CampaignEntry, CampaignReport, load_report, load_results
from repro.campaign.request import RunRequest, execute_request
from repro.campaign.runner import Campaign

__all__ = [
    "Campaign",
    "CampaignEntry",
    "CampaignReport",
    "ResultCache",
    "RunRequest",
    "execute_request",
    "expand_grid",
    "load_report",
    "load_results",
    "parse_sweep_axes",
]
