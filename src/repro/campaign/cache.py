"""Content-hash result cache for campaigns.

Keys are :meth:`~repro.campaign.request.RunRequest.fingerprint` hashes —
covering the experiment name, fully resolved parameters and config
fingerprint — so a hit is only possible for a byte-identical experiment
input.  The cache always holds results in memory; give it a directory to
persist them as one JSON file per fingerprint across processes/sessions.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.errors import ExperimentError
from repro.campaign.request import RunRequest
from repro.experiments.base import ExperimentResult


class ResultCache:
    """Maps request fingerprints to experiment results (memory + optional disk)."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self._memory: Dict[str, ExperimentResult] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, fingerprint: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, "%s.json" % fingerprint)

    def get(self, request: RunRequest) -> Optional[ExperimentResult]:
        """The cached result for this request, or None (counts hit/miss)."""
        fingerprint = request.fingerprint()
        result = self._memory.get(fingerprint)
        if result is None and self.directory is not None:
            path = self._path(fingerprint)
            if os.path.exists(path):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        result = ExperimentResult.from_json(handle.read())
                except ExperimentError:
                    result = None  # corrupt entry: treat as a miss and overwrite later
                else:
                    self._memory[fingerprint] = result
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, request: RunRequest, result: ExperimentResult) -> None:
        """Store a freshly computed result under the request's fingerprint."""
        fingerprint = request.fingerprint()
        self._memory[fingerprint] = result
        if self.directory is not None:
            with open(self._path(fingerprint), "w", encoding="utf-8") as handle:
                handle.write(result.to_json() + "\n")

    def clear(self) -> None:
        """Drop the in-memory entries (on-disk files are left alone)."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0
