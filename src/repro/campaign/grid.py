"""Parameter-grid expansion for campaigns.

A grid maps parameter names to the axis values they sweep; expansion takes
the cartesian product and emits one :class:`~repro.campaign.request.RunRequest`
per point, validating every value against the experiment's declared
parameters up front (so a typo fails before any simulation starts).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Sequence

from repro.errors import ExperimentError
from repro.campaign.request import RunRequest
from repro.experiments.registry import get_spec


def expand_grid(experiment: str, axes: Mapping[str, Sequence[object]]) -> List[RunRequest]:
    """Cartesian-product a parameter grid into concrete run requests.

    ``axes`` maps parameter names to the values each axis takes, e.g.
    ``{"design": ["edge", "split"], "hops": [1, 2]}`` expands to four
    requests.  An empty grid yields the single all-defaults request.
    """
    spec = get_spec(experiment)
    names = list(axes)
    for name in names:
        parameter = spec.parameter(name)
        values = axes[name]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ExperimentError(
                "grid axis %r must be a sequence of values, got %r" % (name, values)
            )
        if not values:
            raise ExperimentError("grid axis %r has no values" % name)
        for value in values:
            parameter.validate(value)
    requests = []
    for point in itertools.product(*(axes[name] for name in names)):
        requests.append(RunRequest(experiment, dict(zip(names, point))))
    return requests


def parse_sweep_axes(experiment: str, assignments: Sequence[str]) -> Dict[str, List[object]]:
    """Parse CLI sweep axes (``param=v1,v2,...``) into a grid mapping.

    Commas enumerate the axis; for repeated parameters (e.g. ``sizes``) the
    values *within* one axis point are joined with ``:`` instead, so
    ``sizes=64:128,256:512`` sweeps two size lists.
    """
    spec = get_spec(experiment)
    axes: Dict[str, List[object]] = {}
    for assignment in assignments:
        name, separator, text = assignment.partition("=")
        if not separator or not name:
            raise ExperimentError("malformed --set %r (expected param=value[,value...])" % assignment)
        parameter = spec.parameter(name)
        items = [item for item in text.split(",") if item != ""]
        if not items:
            raise ExperimentError("sweep axis %r has no values" % name)
        axes[name] = [parameter.parse(item, list_separator=":") for item in items]
    return axes
