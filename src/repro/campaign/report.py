"""Aggregated outcome of a campaign run.

A :class:`CampaignReport` records, per request, the result (or the error
string), whether it came from the cache and how long it took, plus overall
wall time.  Reports serialize to JSON — this is the document the CLI's
``--json`` writes and :func:`load_report` reads back — and flatten to a
single merged CSV for spreadsheet-style analysis of sweeps.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.errors import ExperimentError
from repro.campaign.request import RunRequest
from repro.experiments.base import ExperimentResult


@dataclass
class CampaignEntry:
    """Outcome of one run request."""

    request: RunRequest
    result: Optional[ExperimentResult] = None
    cached: bool = False
    error: Optional[str] = None
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "request": self.request.to_dict(),
            "result": self.result.to_dict() if self.result is not None else None,
            "cached": self.cached,
            "error": self.error,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CampaignEntry":
        result = payload.get("result")
        return cls(
            request=RunRequest.from_dict(payload.get("request", {})),
            result=ExperimentResult.from_dict(result) if result is not None else None,
            cached=bool(payload.get("cached", False)),
            error=payload.get("error"),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
        )


@dataclass
class CampaignReport:
    """Every entry of a finished campaign plus aggregate statistics."""

    entries: List[CampaignEntry] = field(default_factory=list)
    wall_time_s: float = 0.0
    max_workers: int = 1

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def results(self) -> List[ExperimentResult]:
        """The successful results, in request order."""
        return [entry.result for entry in self.entries if entry.ok]

    @property
    def succeeded(self) -> int:
        return sum(1 for entry in self.entries if entry.ok)

    @property
    def failed(self) -> int:
        return sum(1 for entry in self.entries if not entry.ok)

    @property
    def cache_hits(self) -> int:
        return sum(1 for entry in self.entries if entry.cached)

    @property
    def simulated_events(self) -> int:
        """Simulation events executed across all non-cached successful runs."""
        return int(sum(
            entry.result.metadata.perf.get("events", 0.0)
            for entry in self.entries
            if entry.ok and not entry.cached
        ))

    @property
    def fused_hops(self) -> int:
        """NOC hop events elided by lookahead fusion across non-cached runs."""
        return int(sum(
            entry.result.metadata.perf.get("fused_hops", 0.0)
            for entry in self.entries
            if entry.ok and not entry.cached
        ))

    @property
    def fault_windows(self) -> int:
        """Fault windows activated across non-cached successful runs."""
        return int(sum(
            entry.result.metadata.perf.get("fault_windows", 0.0)
            for entry in self.entries
            if entry.ok and not entry.cached
        ))

    @property
    def simulation_wall_s(self) -> float:
        """Wall seconds the simulators of non-cached successful runs consumed."""
        return sum(
            entry.result.metadata.perf.get("wall_s", 0.0)
            for entry in self.entries
            if entry.ok and not entry.cached
        )

    @property
    def warnings(self) -> List[str]:
        """Measurement-quality warnings gathered from every successful result."""
        collected: List[str] = []
        for entry in self.entries:
            if entry.ok:
                collected.extend(
                    "%s: %s" % (entry.request.label(), warning)
                    for warning in entry.result.metadata.warnings
                )
        return collected

    @property
    def saturation_points(self) -> List[str]:
        """Saturation-throughput findings gathered across the campaign.

        ``load_sweep`` results note their SLO saturation point; a sweep over
        designs/topologies/arrival processes therefore ends with one line per
        scenario, which is the headline comparison the paper's
        latency-under-load figures make.
        """
        collected: List[str] = []
        for entry in self.entries:
            if entry.ok:
                collected.extend(
                    "%s: %s" % (entry.request.label(), note)
                    for note in entry.result.notes
                    if note.startswith("saturation throughput")
                )
        return collected

    @property
    def resilience_points(self) -> List[str]:
        """Resilience findings (``chaos_sweep`` digests) across the campaign.

        Each ``chaos_sweep`` result notes, per fault intensity, the degraded
        saturation throughput, worst tail amplification and mean recovery
        transient; a campaign sweeping designs or fault models ends with the
        side-by-side resilience comparison.
        """
        collected: List[str] = []
        for entry in self.entries:
            if entry.ok:
                collected.extend(
                    "%s: %s" % (entry.request.label(), note)
                    for note in entry.result.notes
                    if note.startswith("resilience")
                )
        return collected

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format(self) -> str:
        """Formatted results followed by a one-line campaign summary."""
        parts = [entry.result.format() for entry in self.entries if entry.ok]
        for entry in self.entries:
            if not entry.ok:
                parts.append("!! %s failed: %s" % (entry.request.label(), entry.error))
        warnings = self.warnings
        if warnings:
            parts.append("\n".join("warning: %s" % warning for warning in warnings))
        saturation = self.saturation_points
        if saturation:
            # The cross-run digest carries the request labels the raw notes
            # lack, so it earns its place even for a single load sweep.
            parts.append("\n".join(saturation))
        resilience = self.resilience_points
        if len(resilience) > 1:
            parts.append("\n".join(resilience))
        parts.append(self.summary())
        return "\n\n".join(parts)

    def summary(self) -> str:
        line = (
            "campaign: %d run(s), %d ok, %d failed, %d cache hit(s), "
            "%.2f s wall time, %d worker(s)"
            % (len(self.entries), self.succeeded, self.failed, self.cache_hits,
               self.wall_time_s, self.max_workers)
        )
        events = self.simulated_events
        if events:
            sim_wall = self.simulation_wall_s
            rate = events / sim_wall if sim_wall > 0 else 0.0
            line += "; %d simulated event(s) @ %.0f events/s" % (events, rate)
            fused = self.fused_hops
            if fused:
                line += ", %d hop(s) fused" % fused
            faults = self.fault_windows
            if faults:
                line += ", %d fault window(s)" % faults
        return line

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "campaign-report",
            "entries": [entry.to_dict() for entry in self.entries],
            "wall_time_s": self.wall_time_s,
            "max_workers": self.max_workers,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CampaignReport":
        try:
            entries = [CampaignEntry.from_dict(item) for item in payload.get("entries", [])]
        except (TypeError, AttributeError) as exc:
            raise ExperimentError("malformed campaign-report document: %s" % exc) from None
        return cls(
            entries=entries,
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            max_workers=int(payload.get("max_workers", 1)),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError("invalid campaign-report JSON: %s" % exc) from None
        return cls.from_dict(payload)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def to_csv(self) -> str:
        """All successful results flattened into one CSV.

        Columns are the experiment name, the union of swept parameter names,
        then the union of result headers (first-seen order); cells a given
        result lacks stay empty.
        """
        param_names: List[str] = []
        headers: List[str] = []
        for entry in self.entries:
            if not entry.ok:
                continue
            for name in sorted(entry.request.params):
                if name not in param_names:
                    param_names.append(name)
            for header in entry.result.headers:
                if header not in headers:
                    headers.append(header)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["experiment"] + param_names + headers)
        for entry in self.entries:
            if not entry.ok:
                continue
            prefix = [entry.request.experiment]
            prefix += [_csv_cell(entry.request.params.get(name)) for name in param_names]
            index = {header: position for position, header in enumerate(entry.result.headers)}
            for row in entry.result.rows:
                cells = [row[index[header]] if header in index else "" for header in headers]
                writer.writerow(prefix + cells)
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(self.to_csv())


def _csv_cell(value: object) -> object:
    if isinstance(value, list):
        return ":".join(str(item) for item in value)
    return "" if value is None else value


def load_report(path: str) -> CampaignReport:
    """Load a campaign report written by :meth:`CampaignReport.write_json`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return CampaignReport.from_json(handle.read())
    except OSError as exc:
        raise ExperimentError("cannot read campaign report %s: %s" % (path, exc)) from None


def load_results(path: str) -> List[ExperimentResult]:
    """Load experiment results from any JSON document this package writes.

    Accepts a campaign-report document, a single-result document, or a bare
    JSON list of result documents.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ExperimentError("cannot read results %s: %s" % (path, exc)) from None
    except json.JSONDecodeError as exc:
        raise ExperimentError("invalid results JSON in %s: %s" % (path, exc)) from None
    if isinstance(payload, list):
        return [ExperimentResult.from_dict(item) for item in payload]
    if isinstance(payload, dict) and "entries" in payload:
        return CampaignReport.from_dict(payload).results
    if isinstance(payload, dict):
        return [ExperimentResult.from_dict(payload)]
    raise ExperimentError("unrecognized results document in %s" % path)
