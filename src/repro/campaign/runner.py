"""Campaign execution: sequential or process-pool, always cache-aware.

The cache is consulted before any work is scheduled, so a fully cached
campaign touches neither the simulator nor the pool.  Failures of single
requests are captured per entry (as the exception text) instead of aborting
the rest of the campaign.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.report import CampaignEntry, CampaignReport
from repro.campaign.request import RunRequest, execute_request
from repro.errors import ReproError
from repro.experiments.registry import get_spec


def _request_fingerprint(request: RunRequest) -> str:
    """The request's config fingerprint, or a raw-document hash when the
    request is too malformed to resolve (fingerprinting validates params).

    The fallback is deterministic across processes and worker counts, so
    stream events and error text stay identical however the entry fails.
    """
    try:
        return request.fingerprint()
    except Exception:
        raw = json.dumps(request.to_dict(), sort_keys=True)
        return "raw-" + hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


def _describe_error(exc: Exception, request: Optional[RunRequest] = None) -> str:
    """Exception text for one entry, tagged with its config fingerprint.

    The fingerprint makes failed grid points identifiable from the stream
    and report even when many entries share an experiment name; the same
    wording is used on the inline and pool paths so stream contents do not
    depend on the worker count.
    """
    if isinstance(exc, ReproError):
        message = str(exc)
    else:
        message = "%s: %s" % (type(exc).__name__, exc)
    if request is not None:
        message = "%s [config %s]" % (message, _request_fingerprint(request))
    return message


class Campaign:
    """A batch of run requests executed together.

    ``max_workers`` > 1 fans uncached requests out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; the default runs them
    in-process (which keeps monkeypatched/throwaway experiments usable).
    """

    def __init__(
        self,
        requests: Sequence[RunRequest],
        cache: Optional[ResultCache] = None,
        max_workers: int = 1,
        obs: Optional[object] = None,
    ) -> None:
        if max_workers < 1:
            raise ReproError("campaign max_workers must be >= 1")
        self.requests = list(requests)
        self.cache = cache
        self.max_workers = max_workers
        #: Active :class:`repro.obs.session.ObsSession` (or ``None``): when
        #: set, per-entry progress events and per-run probe samples flow to
        #: its stream; pool workers rebuild the session from its
        #: ``worker_spec()`` and append to the same path.
        self.obs = obs
        for request in self.requests:
            get_spec(request.experiment)  # fail fast on unknown experiments

    def _emit(self, event: str, **fields: object) -> None:
        if self.obs is not None:
            self.obs.emit(event, **fields)

    def run(self) -> CampaignReport:
        """Execute every request and aggregate the outcomes."""
        started = time.perf_counter()
        entries: List[CampaignEntry] = [
            CampaignEntry(request=request) for request in self.requests
        ]
        pending: List[int] = []
        for position, entry in enumerate(entries):
            cached = self.cache.get(entry.request) if self.cache is not None else None
            if cached is not None:
                entry.result = cached
                entry.cached = True
                self._emit(
                    "entry_cached",
                    index=position,
                    entry=entry.request.label(),
                    fingerprint=_request_fingerprint(entry.request),
                )
            else:
                pending.append(position)
        if pending:
            if self.max_workers > 1:
                self._run_pool(entries, pending)
            else:
                self._run_inline(entries, pending)
        for position in pending:
            entry = entries[position]
            if self.cache is not None and entry.ok:
                self.cache.put(entry.request, entry.result)
        return CampaignReport(
            entries=entries,
            wall_time_s=time.perf_counter() - started,
            max_workers=self.max_workers,
        )

    def _run_inline(self, entries: List[CampaignEntry], pending: Sequence[int]) -> None:
        for position in pending:
            entry = entries[position]
            fingerprint = _request_fingerprint(entry.request)
            self._emit(
                "entry_started",
                index=position,
                entry=entry.request.label(),
                fingerprint=fingerprint,
            )
            run_started = time.perf_counter()
            try:
                if self.obs is not None:
                    with self.obs.activate(run=fingerprint):
                        entry.result = entry.request.execute()
                else:
                    entry.result = entry.request.execute()
            except Exception as exc:  # capture per entry; see module docstring
                entry.error = _describe_error(exc, entry.request)
            entry.wall_time_s = time.perf_counter() - run_started
            self._emit(
                "entry_finished",
                index=position,
                fingerprint=fingerprint,
                ok=entry.ok,
                error=entry.error or "",
            )

    def _run_pool(self, entries: List[CampaignEntry], pending: Sequence[int]) -> None:
        obs_spec = self.obs.worker_spec() if self.obs is not None else None
        for position in pending:
            self._emit(
                "entry_started",
                index=position,
                entry=entries[position].request.label(),
                fingerprint=_request_fingerprint(entries[position].request),
            )
        broken = self._pool_round(entries, pending, obs_spec, retrying=False)
        if broken:
            # A BrokenProcessPool is a transient worker death (OOM-killed
            # child, interpreter crash), not a property of the request:
            # resubmit each stranded entry exactly once on a fresh pool.  A
            # second death is reported as the entry's error.
            self._pool_round(entries, broken, obs_spec, retrying=True)
        for position in pending:
            entry = entries[position]
            self._emit(
                "entry_finished",
                index=position,
                fingerprint=_request_fingerprint(entry.request),
                ok=entry.ok,
                error=entry.error or "",
            )

    def _pool_round(self, entries: List[CampaignEntry], pending: Sequence[int],
                    obs_spec: Optional[object], retrying: bool) -> List[int]:
        """One executor pass over ``pending``; returns retryable positions."""
        workers = min(self.max_workers, len(pending))
        broken: List[int] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: Dict[int, object] = {
                position: pool.submit(execute_request, entries[position].request, obs_spec)
                for position in pending
            }
            for position, future in futures.items():
                entry = entries[position]
                run_started = time.perf_counter()
                try:
                    entry.result = future.result()
                    entry.error = None
                    if retrying:
                        entry.result.metadata.warnings.append(
                            "campaign entry retried once after transient "
                            "worker death (BrokenProcessPool)"
                        )
                except BrokenProcessPool as exc:
                    # Provisional error text: cleared if the retry succeeds.
                    entry.error = _describe_error(exc, entry.request)
                    if not retrying:
                        broken.append(position)
                except Exception as exc:
                    entry.error = _describe_error(exc, entry.request)
                if entry.result is not None:
                    # The worker measured the real run time; keep its stamp.
                    entry.wall_time_s = entry.result.metadata.wall_time_s
                else:
                    entry.wall_time_s = time.perf_counter() - run_started
        return broken
