"""Campaign execution: sequential or process-pool, always cache-aware.

The cache is consulted before any work is scheduled, so a fully cached
campaign touches neither the simulator nor the pool.  Failures of single
requests are captured per entry (as the exception text) instead of aborting
the rest of the campaign.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.report import CampaignEntry, CampaignReport
from repro.campaign.request import RunRequest, execute_request
from repro.errors import ReproError
from repro.experiments.registry import get_spec


def _describe_error(exc: Exception) -> str:
    if isinstance(exc, ReproError):
        return str(exc)
    return "%s: %s" % (type(exc).__name__, exc)


class Campaign:
    """A batch of run requests executed together.

    ``max_workers`` > 1 fans uncached requests out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; the default runs them
    in-process (which keeps monkeypatched/throwaway experiments usable).
    """

    def __init__(
        self,
        requests: Sequence[RunRequest],
        cache: Optional[ResultCache] = None,
        max_workers: int = 1,
    ) -> None:
        if max_workers < 1:
            raise ReproError("campaign max_workers must be >= 1")
        self.requests = list(requests)
        self.cache = cache
        self.max_workers = max_workers
        for request in self.requests:
            get_spec(request.experiment)  # fail fast on unknown experiments

    def run(self) -> CampaignReport:
        """Execute every request and aggregate the outcomes."""
        started = time.perf_counter()
        entries: List[CampaignEntry] = [
            CampaignEntry(request=request) for request in self.requests
        ]
        pending: List[int] = []
        for position, entry in enumerate(entries):
            cached = self.cache.get(entry.request) if self.cache is not None else None
            if cached is not None:
                entry.result = cached
                entry.cached = True
            else:
                pending.append(position)
        if pending:
            if self.max_workers > 1:
                self._run_pool(entries, pending)
            else:
                self._run_inline(entries, pending)
        for position in pending:
            entry = entries[position]
            if self.cache is not None and entry.ok:
                self.cache.put(entry.request, entry.result)
        return CampaignReport(
            entries=entries,
            wall_time_s=time.perf_counter() - started,
            max_workers=self.max_workers,
        )

    def _run_inline(self, entries: List[CampaignEntry], pending: Sequence[int]) -> None:
        for position in pending:
            entry = entries[position]
            run_started = time.perf_counter()
            try:
                entry.result = entry.request.execute()
            except Exception as exc:  # capture per entry; see module docstring
                entry.error = _describe_error(exc)
            entry.wall_time_s = time.perf_counter() - run_started


    def _run_pool(self, entries: List[CampaignEntry], pending: Sequence[int]) -> None:
        workers = min(self.max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: Dict[int, object] = {
                position: pool.submit(execute_request, entries[position].request)
                for position in pending
            }
            for position, future in futures.items():
                entry = entries[position]
                run_started = time.perf_counter()
                try:
                    entry.result = future.result()
                except Exception as exc:  # includes BrokenProcessPool etc.
                    entry.error = _describe_error(exc)
                if entry.result is not None:
                    # The worker measured the real run time; keep its stamp.
                    entry.wall_time_s = entry.result.metadata.wall_time_s
                else:
                    entry.wall_time_s = time.perf_counter() - run_started
