"""One executable unit of a campaign: an experiment plus parameter overrides.

Requests carry only JSON-native parameter values (strings, numbers, bools,
lists) so they pickle cleanly across process boundaries and hash stably for
the result cache.  The content hash covers the experiment name, the fully
resolved parameters (declared defaults merged with the overrides) and the
config fingerprint, so a cache entry is invalidated by *any* change to the
inputs that could change the result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_spec


def _normalize(value: object) -> object:
    """Convert a parameter value to a canonical JSON-native form."""
    if isinstance(value, tuple):
        value = list(value)
    if isinstance(value, list):
        return [_normalize(item) for item in value]
    if hasattr(value, "value") and not isinstance(value, (int, float, str, bool)):
        return _normalize(value.value)  # enums
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    raise ExperimentError(
        "run-request parameter value %r is not JSON-serializable" % (value,)
    )


@dataclass(frozen=True)
class RunRequest:
    """A single experiment invocation with explicit parameter overrides."""

    experiment: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params",
            {name: _normalize(value) for name, value in dict(self.params).items()},
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def resolved_params(self) -> Dict[str, object]:
        """Declared defaults merged with this request's overrides (validated)."""
        spec = get_spec(self.experiment)
        return {
            name: _normalize(value)
            for name, value in spec.resolve(self.params).items()
        }

    def canonical(self) -> str:
        """Canonical JSON identity string (covers config fingerprint too)."""
        spec = get_spec(self.experiment)
        payload = {
            "experiment": self.experiment,
            "params": self.resolved_params(),
            "config_fingerprint": spec.default_config().fingerprint(),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        """Short content hash used as the cache key."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        """Human-readable one-liner, e.g. ``fig6[design=edge]``."""
        if not self.params:
            return self.experiment
        inner = ",".join("%s=%s" % (k, _short(v)) for k, v in sorted(self.params.items()))
        return "%s[%s]" % (self.experiment, inner)

    # ------------------------------------------------------------------
    # Serialization / execution
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"experiment": self.experiment, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunRequest":
        try:
            return cls(
                experiment=str(payload["experiment"]),
                params=dict(payload.get("params", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError("malformed run-request document: %s" % exc) from None

    def execute(self) -> ExperimentResult:
        """Run the experiment through its spec (validates the overrides)."""
        spec = get_spec(self.experiment)
        overrides = {
            name: tuple(value) if isinstance(value, list) else value
            for name, value in self.params.items()
        }
        return spec.run(**overrides)


def _short(value: object) -> str:
    if isinstance(value, list):
        return ":".join(str(item) for item in value)
    return str(value)


def execute_request(
    request: RunRequest, obs_spec: Optional[Mapping[str, object]] = None
) -> ExperimentResult:
    """Module-level entry point so ProcessPoolExecutor workers can pickle it.

    ``obs_spec`` (from :meth:`repro.obs.session.ObsSession.worker_spec`)
    rebuilds the parent's telemetry session inside the worker so probe
    samples append to the shared stream path; per-line ``O_APPEND`` writes
    keep concurrent workers from corrupting each other's records.
    """
    if obs_spec is None:
        return request.execute()
    from repro.obs.session import ObsSession

    try:
        run_label = request.fingerprint()
    except Exception:
        # Malformed requests fail validation inside execute() with the same
        # error regardless of worker count; don't let fingerprinting (which
        # also validates) pre-empt that from a different frame.
        run_label = ""
    session = ObsSession.from_worker_spec(dict(obs_spec))
    try:
        with session.activate(run=run_label):
            return request.execute()
    finally:
        session.close()
