"""Discrete-event simulation substrate.

The kernel is deliberately small: a time-ordered event queue
(:class:`~repro.sim.engine.Simulator`), busy-until resources that model
serialization and queuing on links, ports and pipelines
(:mod:`repro.sim.resource`), and statistics collection with the
windowed-convergence methodology of the paper's §5
(:mod:`repro.sim.stats`).
"""

from repro.sim.engine import Event, Simulator, Process
from repro.sim.resource import Resource, Channel, Pipeline
from repro.sim.stats import (
    StatAccumulator,
    ThroughputMeter,
    WindowedMonitor,
    LatencyHistogram,
    LatencyRecorder,
)

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "Resource",
    "Channel",
    "Pipeline",
    "StatAccumulator",
    "ThroughputMeter",
    "WindowedMonitor",
    "LatencyHistogram",
    "LatencyRecorder",
]
