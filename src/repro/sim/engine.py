"""A minimal, fast discrete-event simulation kernel.

The kernel keeps a binary heap of :class:`Event` objects ordered by
``(time, sequence)``.  Components schedule callbacks at absolute or relative
times; the simulator executes them in order and advances the clock.  Time is
measured in core clock cycles (integers or floats are both accepted; the
kernel never rounds).

Two styles of modelling are supported:

* **callback style** — ``sim.schedule(delay, fn, *args)``; used by most of
  the NOC, coherence and NI models because it has the lowest overhead, and
* **process style** — generator-based coroutines wrapped in
  :class:`Process`, which ``yield`` delays; used by workload drivers where
  sequential code is clearer.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events are comparable by ``(time, seq)`` so that simultaneous events fire
    in scheduling order, which keeps runs deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap but is skipped)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%s, seq=%d, %s, %s)" % (self.time, self.seq, self.callback, state)


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(10, hello)          # relative delay
        sim.run()                        # run to completion
        sim.run(until=100_000)           # or bounded
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Clock and queue introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (useful for performance reporting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError("cannot schedule an event %.3f cycles in the past" % delay)
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule an event at t=%.3f, current time is %.3f" % (time, self._now)
            )
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulation time at which execution stopped.
        """
        self._stop_requested = False
        executed = 0
        while self._queue and not self._stop_requested:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                break
            heapq.heappop(self._queue)
            self._now = head.time
            self._events_executed += 1
            executed += 1
            head.callback(*head.args)
        if until is not None and not self._queue and self._now < until:
            # The model went idle before the horizon; advance the clock so
            # rate computations over [0, until] stay meaningful.
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Process (coroutine) support
    # ------------------------------------------------------------------
    def process(self, generator: Generator[float, float, Any]) -> "Process":
        """Wrap a generator as a :class:`Process` and start it immediately."""
        proc = Process(self, generator)
        proc.start()
        return proc


class Process:
    """A generator-based simulation process.

    The wrapped generator yields delays (in cycles); the process resumes after
    each delay with the simulation time at resumption.  When the generator
    returns, :attr:`finished` becomes True and :attr:`result` holds the return
    value.  Completion callbacks can be registered with :meth:`on_complete`.
    """

    def __init__(self, sim: Simulator, generator: Generator[float, float, Any]) -> None:
        self._sim = sim
        self._generator = generator
        self._started = False
        self.finished = False
        self.result: Any = None
        self._completion_callbacks: List[Callable[["Process"], None]] = []

    def start(self) -> None:
        """Schedule the first step of the process at the current time."""
        self._sim.schedule(0, self._advance, None)

    def on_complete(self, callback: Callable[["Process"], None]) -> None:
        """Register a callback invoked when the process finishes."""
        if self.finished:
            callback(self)
        else:
            self._completion_callbacks.append(callback)

    def _advance(self, value: Any) -> None:
        try:
            if not self._started:
                self._started = True
                delay = next(self._generator)
            else:
                delay = self._generator.send(value if value is not None else self._sim.now)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            for callback in self._completion_callbacks:
                callback(self)
            return
        if delay is None:
            delay = 0
        if delay < 0:
            raise SimulationError("a process yielded a negative delay: %r" % delay)
        self._sim.schedule(delay, self._advance, None)


def drain(sim: Simulator, processes: Iterable[Process], until: Optional[float] = None) -> None:
    """Run the simulator until every process in ``processes`` has finished."""
    processes = list(processes)
    while not all(p.finished for p in processes):
        if not sim.step():
            unfinished = sum(1 for p in processes if not p.finished)
            raise SimulationError(
                "simulation went idle with %d unfinished process(es)" % unfinished
            )
        if until is not None and sim.now > until:
            raise SimulationError("processes did not finish before t=%.1f" % until)
