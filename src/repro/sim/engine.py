"""A minimal, fast discrete-event simulation kernel.

The kernel keeps a binary heap of :class:`Event` objects ordered by
``(time, sequence)``.  Components schedule callbacks at absolute or relative
times; the simulator executes them in order and advances the clock.  Time is
measured in core clock cycles (integers or floats are both accepted; the
kernel never rounds).

Two styles of modelling are supported:

* **callback style** — ``sim.schedule(delay, fn, *args)``; used by most of
  the NOC, coherence and NI models because it has the lowest overhead, and
* **process style** — generator-based coroutines wrapped in
  :class:`Process`, which ``yield`` delays; used by workload drivers where
  sequential code is clearer.

Callback-style sites that never cancel their events should prefer
:meth:`Simulator.schedule_fast`: it pushes a bare ``(time, seq, callback,
args)`` tuple instead of constructing an :class:`Event`, which removes the
dominant per-event allocation on packet-heavy runs.  The trade-off is that
the fast path returns no handle, so the event cannot be cancelled — keep
using :meth:`Simulator.schedule` wherever a caller might need
:meth:`Simulator.cancel`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import hooks as obs_hooks
from repro.sim import perf

#: Cancelled events are purged lazily; once at least this many are pending
#: AND they make up half the heap, the heap is compacted in one pass.
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback.

    Ordering lives in the simulator's heap, which stores ``(time, seq,
    event)`` tuples: the unique ``seq`` makes simultaneous events fire in
    scheduling order (deterministic runs) and keeps comparisons on the tuple
    prefix, entirely in C.  Do not push Event objects onto the heap directly
    — they intentionally define no ordering of their own.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap but is skipped)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%s, seq=%d, %s, %s)" % (self.time, self.seq, self.callback, state)


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(10, hello)          # relative delay
        sim.run()                        # run to completion
        sim.run(until=100_000)           # or bounded

    Internally the heap holds ``(time, seq, event)`` tuples rather than the
    :class:`Event` objects themselves: tuple comparison short-circuits on the
    ``(time, seq)`` prefix entirely in C, which keeps heap maintenance off
    the Python-level ``Event.__lt__`` path (the single hottest call site in
    packet-heavy runs).

    Entries scheduled through :meth:`schedule_fast` are stored as
    ``(time, seq, callback, args)`` 4-tuples with no :class:`Event` at all.
    The two shapes share one heap: ``seq`` is unique, so comparisons never
    reach the differing third element, and the dispatch loop tells them
    apart by length (only 3-tuples can be cancelled).
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_events_executed",
        "_stop_requested",
        "_cancelled_events",
        "_peak_pending",
        "_run_horizon",
        "_perf",
        "_obs_index",
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        #: Mixed heap of ``(time, seq, event)`` and fast ``(time, seq,
        #: callback, args)`` entries; see the class docstring.
        self._queue: List[Tuple[Any, ...]] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._stop_requested = False
        self._cancelled_events: set = set()
        self._peak_pending = 0
        #: The ``until`` horizon of the :meth:`run` currently executing
        #: (+inf otherwise).  Lookahead optimisations must not commit work at
        #: virtual times past it: the run may stop there and the caller may
        #: sample statistics that the unfused event chain would not yet have
        #: accumulated.
        self._run_horizon = float("inf")
        self._perf = perf.register_simulator(self)
        #: Deterministic per-run index handed out by the active obs session
        #: (``None`` when observability is disabled — the common case; the
        #: hook costs one truthiness check and allocates nothing).
        self._obs_index = obs_hooks.register_simulator(self)

    # ------------------------------------------------------------------
    # Clock and queue introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (useful for performance reporting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    @property
    def peak_pending_events(self) -> int:
        """Largest heap size observed so far (memory-pressure indicator)."""
        return self._peak_pending

    @property
    def cancelled_backlog(self) -> int:
        """Cancelled events still occupying the heap (compaction pressure)."""
        return len(self._cancelled_events)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError("cannot schedule an event %.3f cycles in the past" % delay)
        time = self._now + delay
        seq = next(self._seq)
        event = Event(time, seq, callback, args)
        queue = self._queue
        heapq.heappush(queue, (time, seq, event))
        if len(queue) > self._peak_pending:
            self._peak_pending = len(queue)
        return event

    def schedule_fast(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule ``callback(*args)`` without allocating an :class:`Event`.

        The allocation-free path for call sites that never cancel: fabric
        hops and deliveries, resource completions, process steps, arrival
        clocks.  Ordering is identical to :meth:`schedule` (same time/seq
        discipline, same counter), but no handle is returned, so the event
        cannot be cancelled.
        """
        if delay < 0:
            raise SimulationError("cannot schedule an event %.3f cycles in the past" % delay)
        queue = self._queue
        heapq.heappush(queue, (self._now + delay, next(self._seq), callback, args))
        self._perf.fast_events += 1
        if len(queue) > self._peak_pending:
            self._peak_pending = len(queue)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule an event at t=%.3f, current time is %.3f" % (time, self._now)
            )
        seq = next(self._seq)
        event = Event(time, seq, callback, args)
        queue = self._queue
        heapq.heappush(queue, (time, seq, event))
        if len(queue) > self._peak_pending:
            self._peak_pending = len(queue)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event, compacting the heap when cancellations pile up.

        ``event.cancel()`` alone also works (the kernel skips cancelled events
        when they surface), but going through the simulator lets it track the
        set of dead-but-pending events and periodically rebuild the heap,
        which bounds ``pending_events`` for workloads that cancel heavily
        (timeouts, speculative wakeups).  Cancelling an event that already
        fired is a harmless no-op beyond one set entry that the next
        compaction clears.
        """
        if event.cancelled:
            return
        event.cancelled = True
        cancelled = self._cancelled_events
        cancelled.add(event)
        if (
            len(cancelled) >= _COMPACT_MIN_CANCELLED
            and len(cancelled) * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled event from the heap in one pass.

        In place, because :meth:`run` holds a local reference to the heap
        while events (which may cancel other events) are executing.  The
        tracked set is cleared outright: after the rebuild no cancelled
        event remains in the heap, including any stale entries for events
        cancelled after they had already fired.
        """
        self._queue[:] = [
            entry for entry in self._queue
            if len(entry) == 4 or not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled_events.clear()

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest live pending event, or None when idle.

        O(1) amortized: cancelled entries at the head are popped on the way
        (work :meth:`run` would otherwise do).  This is the lookahead bound
        the NOC's hop fusion peeks at — while a packet's next hop arrives
        strictly before this time, no other event can interleave.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            if len(entry) == 3 and entry[2].cancelled:
                heapq.heappop(queue)
                self._cancelled_events.discard(entry[2])
                continue
            return entry[0]
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if len(entry) == 4:
                callback, args = entry[2], entry[3]
            else:
                event = entry[2]
                if event.cancelled:
                    self._cancelled_events.discard(event)
                    continue
                callback, args = event.callback, event.args
            self._now = entry[0]
            self._events_executed += 1
            self._perf.events += 1
            if self._peak_pending > self._perf.peak_pending:
                self._perf.peak_pending = self._peak_pending
            callback(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulation time at which execution stopped.
        """
        self._stop_requested = False
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        horizon = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        self._run_horizon = horizon
        try:
            while queue and not self._stop_requested:
                entry = queue[0]
                if len(entry) == 4:
                    callback, args = entry[2], entry[3]
                else:
                    event = entry[2]
                    if event.cancelled:
                        pop(queue)
                        self._cancelled_events.discard(event)
                        continue
                    callback, args = event.callback, event.args
                head_time = entry[0]
                if head_time > horizon:
                    # Clamp: a horizon already in the past must not move the
                    # clock backwards.
                    if until > self._now:
                        self._now = until
                    break
                if executed >= limit:
                    break
                pop(queue)
                self._now = head_time
                executed += 1
                callback(*args)
        finally:
            self._run_horizon = float("inf")
            # The executed-event count is kept in a local inside the loop;
            # fold it into the lifetime counters even on an exception.
            self._events_executed += executed
            self._perf.events += executed
            if self._peak_pending > self._perf.peak_pending:
                self._perf.peak_pending = self._peak_pending
        if until is not None and not queue and self._now < until:
            # The model went idle before the horizon; advance the clock so
            # rate computations over [0, until] stay meaningful.
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Process (coroutine) support
    # ------------------------------------------------------------------
    def process(self, generator: Generator[float, float, Any]) -> "Process":
        """Wrap a generator as a :class:`Process` and start it immediately."""
        proc = Process(self, generator)
        proc.start()
        return proc


class Process:
    """A generator-based simulation process.

    The wrapped generator yields delays (in cycles); the process resumes after
    each delay with the simulation time at resumption.  When the generator
    returns, :attr:`finished` becomes True and :attr:`result` holds the return
    value.  Completion callbacks can be registered with :meth:`on_complete`.
    """

    __slots__ = ("_sim", "_generator", "_advance_bound", "_started", "finished", "result",
                 "_completion_callbacks")

    def __init__(self, sim: Simulator, generator: Generator[float, float, Any]) -> None:
        self._sim = sim
        self._generator = generator
        #: The bound step method, created once instead of per yield (stepping
        #: a process schedules an event per yield, and binding is the only
        #: per-event allocation the kernel itself can avoid).
        self._advance_bound = self._advance
        self._started = False
        self.finished = False
        self.result: Any = None
        self._completion_callbacks: List[Callable[["Process"], None]] = []

    def start(self) -> None:
        """Schedule the first step of the process at the current time."""
        self._sim.schedule_fast(0, self._advance_bound, None)

    def on_complete(self, callback: Callable[["Process"], None]) -> None:
        """Register a callback invoked when the process finishes."""
        if self.finished:
            callback(self)
        else:
            self._completion_callbacks.append(callback)

    def _advance(self, value: Any) -> None:
        try:
            if not self._started:
                self._started = True
                delay = next(self._generator)
            else:
                delay = self._generator.send(value if value is not None else self._sim.now)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            for callback in self._completion_callbacks:
                callback(self)
            return
        if delay is None:
            delay = 0
        if delay < 0:
            raise SimulationError("a process yielded a negative delay: %r" % delay)
        self._sim.schedule_fast(delay, self._advance_bound, None)


def drain(sim: Simulator, processes: Iterable[Process], until: Optional[float] = None) -> None:
    """Run the simulator until every process in ``processes`` has finished.

    Completion is tracked with an ``on_complete`` counter rather than
    rescanning every process per event (which made draining quadratic in
    the process count for large workload sets).
    """
    remaining = [0]

    def finished(_process: Process) -> None:
        remaining[0] -= 1

    for process in processes:
        if not process.finished:
            remaining[0] += 1
            process.on_complete(finished)
    while remaining[0]:
        if not sim.step():
            raise SimulationError(
                "simulation went idle with %d unfinished process(es)" % remaining[0]
            )
        if until is not None and sim.now > until:
            raise SimulationError("processes did not finish before t=%.1f" % until)
