"""Statistics collection for the simulator.

Implements the measurement methodology of the paper's §5: metrics are
monitored in fixed-size cycle windows and a run is considered converged when
the metric changes by less than a tolerance (1 % in the paper) between
consecutive windows.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

#: Percentiles reported by :meth:`LatencyRecorder.summary` and the load
#: subsystem's tail-latency tables.
TAIL_PERCENTILES = (50.0, 95.0, 99.0, 99.9)


class LatencyHistogram:
    """HDR-style fixed-bucket histogram with bounded relative error.

    Values (latencies in cycles) are floored to integers and binned into
    buckets whose width grows with magnitude: values below
    ``2**sub_bucket_bits`` get a bucket each (exact to one cycle), larger
    values share ``2**(sub_bucket_bits-1)`` sub-buckets per power of two, so
    the quantization error of any recorded value is bounded by
    ``2**-(sub_bucket_bits-1)`` relative.  Unlike a sampling reservoir the
    histogram covers *every* recorded value, which makes high percentiles
    (p99, p99.9) of long runs exact up to that bucket resolution instead of
    subject to sampling noise.

    Buckets are kept in a sparse dict, so memory stays proportional to the
    number of distinct latency magnitudes observed, not the value range.
    Histograms with the same ``sub_bucket_bits`` merge losslessly, which is
    how per-core recorders aggregate into per-tenant and machine-wide tails.
    """

    __slots__ = ("name", "sub_bucket_bits", "count", "total",
                 "minimum", "maximum", "_counts")

    def __init__(self, name: str = "latency", sub_bucket_bits: int = 10) -> None:
        if sub_bucket_bits < 2:
            raise ValueError("sub_bucket_bits must be at least 2")
        self.name = name
        self.sub_bucket_bits = sub_bucket_bits
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Bucket mapping
    # ------------------------------------------------------------------
    def _index_of(self, value: float) -> int:
        v = int(value)
        if v < 0:
            v = 0
        sub_bits = self.sub_bucket_bits
        if v < (1 << sub_bits):
            return v
        shift = v.bit_length() - sub_bits
        # The top sub_bits bits of v; its leading bit is always set, so the
        # usable sub-bucket range per power of two is 2**(sub_bits-1) wide.
        top = v >> shift
        half = 1 << (sub_bits - 1)
        return (1 << sub_bits) + (shift - 1) * half + (top - half)

    def _bucket_bounds(self, index: int) -> Tuple[float, float]:
        sub_bits = self.sub_bucket_bits
        if index < (1 << sub_bits):
            return float(index), float(index)
        half = 1 << (sub_bits - 1)
        offset = index - (1 << sub_bits)
        shift = offset // half + 1
        top = half + offset % half
        low = top << shift
        high = ((top + 1) << shift) - 1
        return float(low), float(high)

    # ------------------------------------------------------------------
    # Recording / merging
    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Record one latency sample."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        index = self._index_of(value)
        self._counts[index] = self._counts.get(index, 0) + 1

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one (same resolution)."""
        if other.sub_bucket_bits != self.sub_bucket_bits:
            raise ValueError(
                "cannot merge histograms of different resolution (%d vs %d sub-bucket bits)"
                % (self.sub_bucket_bits, other.sub_bucket_bits)
            )
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) over every recorded sample.

        Exact up to the bucket resolution: the returned value is the midpoint
        of the bucket containing the rank, clamped to the observed extremes.
        """
        if not self.count:
            return 0.0
        if p <= 0:
            return self.minimum
        if p >= 100:
            return self.maximum
        target = p / 100.0 * self.count
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= target:
                low, high = self._bucket_bounds(index)
                mid = (low + high) / 2.0
                return min(max(mid, self.minimum), self.maximum)
        return self.maximum

    def percentiles(self, points: Sequence[float] = TAIL_PERCENTILES) -> Dict[str, float]:
        """Percentile dict keyed ``"p50"``-style (``99.9`` becomes ``"p99.9"``)."""
        return {_percentile_key(p): self.percentile(p) for p in points}

    def as_dict(self) -> Dict[str, float]:
        summary: Dict[str, float] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }
        summary.update(self.percentiles())
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "LatencyHistogram(%s, n=%d, p99=%.1f)" % (
            self.name, self.count, self.percentile(99.0))


def _percentile_key(p: float) -> str:
    return "p%g" % p


class StatAccumulator:
    """Streaming mean / variance / extremes for scalar samples."""

    __slots__ = ("name", "count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self, name: str = "stat") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        """Record one sample (Welford's online algorithm)."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 if empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the samples."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation of the samples."""
        return math.sqrt(self.variance)

    def merge(self, other: "StatAccumulator") -> None:
        """Fold another accumulator's samples into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean = (self._mean * self.count + other._mean * other.count) / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def as_dict(self) -> Dict[str, float]:
        """Summary dictionary (handy for experiment reports)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "total": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StatAccumulator(%s, n=%d, mean=%.2f)" % (self.name, self.count, self.mean)


class LatencyRecorder(StatAccumulator):
    """A :class:`StatAccumulator` specialized for request latencies.

    Also keeps a bounded set of raw samples so percentiles can be computed.
    Once more than ``max_samples`` values arrive, the retained set is a
    uniform reservoir over the *whole* stream (Vitter's algorithm R) rather
    than the first ``max_samples`` values: keeping only the stream prefix
    would freeze the percentiles on the warm-up transient and never reflect
    steady state.  The reservoir's RNG is seeded from the recorder name, so
    runs are reproducible and recorders do not perturb any global RNG.

    With ``exact=True`` the recorder instead feeds every sample into a
    :class:`LatencyHistogram` and :meth:`percentile` answers from it —
    covering the whole stream at bounded bucket resolution.  No reservoir is
    kept in this mode (:attr:`samples` stays empty): the histogram replaces
    it, and skipping the per-sample reservoir bookkeeping keeps the
    completion hot path lean.  Open-loop load runs use this mode; the
    default stays reservoir-only so existing experiments keep byte-identical
    output.
    """

    __slots__ = ("_samples", "_max_samples", "_rng", "_histogram")

    def __init__(self, name: str = "latency", max_samples: int = 100_000,
                 exact: bool = False) -> None:
        super().__init__(name)
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._histogram: Optional[LatencyHistogram] = (
            LatencyHistogram(name) if exact else None
        )

    def add(self, value: float) -> None:
        super().add(value)
        if self._histogram is not None:
            self._histogram.record(value)
            return
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            # Algorithm R: the i-th sample replaces a random slot with
            # probability max_samples / i, keeping the reservoir uniform.
            slot = self._rng.randrange(self.count)
            if slot < self._max_samples:
                self._samples[slot] = value

    @property
    def exact(self) -> bool:
        """Whether percentiles cover the whole stream (histogram-backed)."""
        return self._histogram is not None

    @property
    def histogram(self) -> Optional[LatencyHistogram]:
        """The backing histogram in exact mode (None otherwise)."""
        return self._histogram

    @property
    def samples(self) -> List[float]:
        """The recorded samples (bounded by ``max_samples``).

        In insertion order while the stream fits in the reservoir; once the
        stream exceeds ``max_samples`` the order is arbitrary.  Always empty
        in exact mode, where the histogram replaces the reservoir.
        """
        return list(self._samples)

    def percentile(self, p: float) -> float:
        """Return the ``p``-th percentile (0-100) of the recorded latencies.

        Exact mode answers from the full-stream histogram; otherwise the
        percentile is interpolated over the (possibly sampled) reservoir.
        """
        if self._histogram is not None:
            return self._histogram.percentile(p)
        return self._reservoir_percentile(sorted(self._samples), p)

    @staticmethod
    def _reservoir_percentile(ordered: List[float], p: float) -> float:
        """Interpolated percentile over an already-sorted sample list."""
        if not ordered:
            return 0.0
        if p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[-1]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def summary(self) -> Dict[str, object]:
        """Streaming statistics plus tail percentiles, labelled by fidelity.

        ``percentile_mode`` is ``"exact"`` when the percentiles cover every
        recorded sample (histogram mode) and ``"approximate"`` when they are
        computed over a reservoir that may have subsampled the stream.
        """
        summary: Dict[str, object] = self.as_dict()
        if self._histogram is not None:
            summary.update(self._histogram.percentiles())
        else:
            ordered = sorted(self._samples)  # one sort for all percentiles
            for p in TAIL_PERCENTILES:
                summary[_percentile_key(p)] = self._reservoir_percentile(ordered, p)
        summary["percentile_mode"] = "exact" if self.exact else "approximate"
        return summary


class ThroughputMeter:
    """Counts bytes (or events) delivered and converts them to rates."""

    __slots__ = ("name", "bytes_delivered", "events", "_start_time")

    def __init__(self, name: str = "throughput", start_time: float = 0.0) -> None:
        self.name = name
        self.bytes_delivered = 0
        self.events = 0
        self._start_time = start_time

    def record(self, nbytes: int) -> None:
        """Record a delivery of ``nbytes``."""
        self.bytes_delivered += nbytes
        self.events += 1

    def reset(self, now: float) -> None:
        """Zero the counters and restart the measurement window at ``now``."""
        self.bytes_delivered = 0
        self.events = 0
        self._start_time = now

    def bytes_per_cycle(self, now: float) -> float:
        """Average delivery rate since the window start."""
        elapsed = now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self.bytes_delivered / elapsed

    def gbps(self, now: float, frequency_ghz: float) -> float:
        """Average delivery rate in GBps given the core clock frequency."""
        return self.bytes_per_cycle(now) * frequency_ghz


class WindowedMonitor:
    """Implements the paper's convergence criterion (§5).

    The metric of interest is sampled once per window of ``window_cycles``;
    the run is converged when the relative change between two consecutive
    windows drops below ``tolerance`` (after at least ``min_windows``
    windows).
    """

    def __init__(
        self,
        window_cycles: float = 500_000,
        tolerance: float = 0.01,
        min_windows: int = 2,
        max_windows: int = 64,
    ) -> None:
        self.window_cycles = window_cycles
        self.tolerance = tolerance
        self.min_windows = min_windows
        self.max_windows = max_windows
        self.window_values: List[float] = []

    def record_window(self, value: float) -> None:
        """Record the metric value measured over the window that just ended."""
        self.window_values.append(value)

    @property
    def windows_seen(self) -> int:
        return len(self.window_values)

    @property
    def exhausted(self) -> bool:
        """True once the window budget (``max_windows``) is spent."""
        return len(self.window_values) >= self.max_windows

    @property
    def converged_naturally(self) -> bool:
        """True only when the tolerance criterion itself is met.

        Distinct from :attr:`converged`, which also turns True when
        ``max_windows`` is exhausted — a run that merely ran out of window
        budget has *not* demonstrated a steady state, and callers reporting
        measurements should surface that (see :meth:`warning`).
        """
        if len(self.window_values) < self.min_windows:
            return False
        prev, last = self.window_values[-2], self.window_values[-1]
        if prev == 0 and last == 0:
            return True
        denom = max(abs(prev), abs(last), 1e-12)
        return abs(last - prev) / denom < self.tolerance

    @property
    def converged(self) -> bool:
        """True once the run should stop measuring: the tolerance criterion
        is met, or the ``max_windows`` budget is exhausted."""
        if len(self.window_values) < self.min_windows:
            return False
        return self.converged_naturally or self.exhausted

    def warning(self) -> Optional[str]:
        """A human-readable warning when measurement stopped without converging."""
        if self.exhausted and not self.converged_naturally:
            return (
                "metric did not converge to %.2f%% within %d windows of %g cycles; "
                "reported value is the mean of the last two windows"
                % (self.tolerance * 100.0, self.max_windows, self.window_cycles)
            )
        return None

    @property
    def value(self) -> Optional[float]:
        """The converged metric value (mean of the last two windows)."""
        if not self.window_values:
            return None
        if len(self.window_values) == 1:
            return self.window_values[0]
        return 0.5 * (self.window_values[-1] + self.window_values[-2])
