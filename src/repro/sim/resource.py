"""Busy-until resources for modelling serialization and queuing.

The NOC links, router ports, memory controllers and NI pipelines are all
modelled as :class:`Resource` objects: a resource can serve one request at a
time, each request occupies it for a caller-specified number of cycles, and
requests queue FIFO.  This captures the first-order effects the paper cares
about (link serialization, unroll-rate limits, MC-column congestion) without
simulating individual flits cycle by cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class Resource:
    """A FIFO-serialized resource with an occupancy per grant.

    :meth:`acquire` reserves the resource for ``occupancy`` cycles starting at
    the earliest time it is free, and returns the cycle at which the *grant
    begins*.  The caller is expected to schedule its own completion event at
    ``grant + occupancy`` (or use :meth:`acquire_then`).
    """

    __slots__ = ("sim", "name", "_free_at", "busy_cycles", "grants", "_stats_since",
                 "_open_grants")

    def __init__(self, sim: Simulator, name: str = "resource") -> None:
        self.sim = sim
        self.name = name
        self._free_at: float = 0.0
        #: Total cycles this resource has been occupied (for utilization stats).
        self.busy_cycles: float = 0.0
        #: Number of grants issued.
        self.grants: int = 0
        #: Simulation time at which the utilization counters were last reset.
        self._stats_since: float = 0.0
        #: Busy intervals that have not finished yet, as (start, end) pairs in
        #: grant order.  Pruned lazily; :meth:`reset_stats` uses them to carry
        #: the post-reset portion of in-flight grants over a warm-up reset.
        self._open_grants: Deque[Tuple[float, float]] = deque()

    def acquire(self, occupancy: float, earliest: Optional[float] = None) -> float:
        """Reserve the resource for ``occupancy`` cycles; return the grant time."""
        if occupancy < 0:
            raise SimulationError("occupancy cannot be negative (%s)" % self.name)
        # Hot path (one call per NOC hop): read the simulator clock directly
        # rather than through the ``now`` property descriptor.
        now = self.sim._now
        start = now if earliest is None else earliest
        if start < self._free_at:
            start = self._free_at
        end = start + occupancy
        self._free_at = end
        self.busy_cycles += occupancy
        self.grants += 1
        if occupancy > 0:
            open_grants = self._open_grants
            while open_grants and open_grants[0][1] <= now:
                open_grants.popleft()
            open_grants.append((start, end))
        return start

    def acquire_then(
        self, occupancy: float, callback: Callable[..., None], *args, extra_delay: float = 0.0
    ) -> float:
        """Reserve the resource and schedule ``callback`` when the grant completes.

        Returns the completion time (grant + occupancy + extra_delay).
        """
        start = self.acquire(occupancy)
        finish = start + occupancy + extra_delay
        self.sim.schedule_fast(finish - self.sim.now, callback, *args)
        return finish

    @property
    def free_at(self) -> float:
        """Earliest cycle at which the resource is idle."""
        return self._free_at

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the resource has been busy since the last stats reset."""
        horizon = (self.sim.now - self._stats_since) if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / horizon)

    def in_flight_busy_cycles(self, since: Optional[float] = None) -> float:
        """Busy cycles of unfinished grants that fall at or after ``since``.

        Grants are accounted for in full at :meth:`acquire` time, so a grant
        that straddles a measurement boundary has already banked cycles that
        belong to the *next* measurement window.  This returns exactly those
        cycles: the overlap of every open grant with ``[since, inf)``.
        """
        boundary = self.sim.now if since is None else since
        open_grants = self._open_grants
        while open_grants and open_grants[0][1] <= boundary:
            open_grants.popleft()
        return sum(end - max(start, boundary) for start, end in open_grants)

    def reset_stats(self) -> None:
        """Reset the utilization counters (used at the end of warm-up).

        Grants still in flight are not dropped: the portion of their occupancy
        that falls after the reset is credited to the new measurement window,
        so ``utilization()`` right after a warm-up reset reflects the work the
        resource is actually doing instead of undercounting it.
        """
        self.busy_cycles = self.in_flight_busy_cycles()
        self.grants = 0
        self._stats_since = self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Resource(%s, free_at=%.1f)" % (self.name, self._free_at)


class Channel(Resource):
    """A resource with a fixed bandwidth, occupied proportionally to bytes sent."""

    __slots__ = ("bytes_per_cycle", "bytes_transferred")

    def __init__(self, sim: Simulator, bytes_per_cycle: float, name: str = "channel") -> None:
        super().__init__(sim, name)
        if bytes_per_cycle <= 0:
            raise SimulationError("channel bandwidth must be positive (%s)" % name)
        self.bytes_per_cycle = bytes_per_cycle
        self.bytes_transferred = 0

    def send(self, nbytes: int, earliest: Optional[float] = None) -> float:
        """Reserve the channel for a message of ``nbytes``; return the grant time."""
        if nbytes < 0:
            raise SimulationError("cannot send a negative number of bytes on %s" % self.name)
        self.bytes_transferred += nbytes
        return self.acquire(nbytes / self.bytes_per_cycle, earliest=earliest)

    def serialization_cycles(self, nbytes: int) -> float:
        """Cycles needed to serialize ``nbytes`` onto this channel."""
        return nbytes / self.bytes_per_cycle

    def reset_stats(self) -> None:
        """Reset counters, crediting in-flight grants' post-reset portion.

        Bytes flow at ``bytes_per_cycle`` while the channel is busy, so the
        bytes attributable to the new window are the carried-over busy cycles
        times the link rate (mirrors :meth:`Resource.reset_stats`).
        """
        super().reset_stats()
        self.bytes_transferred = self.busy_cycles * self.bytes_per_cycle


class Pipeline(Resource):
    """A pipelined unit: new work can be accepted every ``initiation_interval``
    cycles, while each item takes ``depth`` cycles of latency.

    This models the NI pipelines (RGP/RCP/RRPP), which unroll one cache-block
    request per cycle but have a multi-cycle processing latency.
    """

    __slots__ = ("initiation_interval", "depth")

    def __init__(
        self,
        sim: Simulator,
        initiation_interval: float,
        depth: float,
        name: str = "pipeline",
    ) -> None:
        super().__init__(sim, name)
        if initiation_interval <= 0:
            raise SimulationError("initiation interval must be positive (%s)" % name)
        if depth < 0:
            raise SimulationError("pipeline depth cannot be negative (%s)" % name)
        self.initiation_interval = initiation_interval
        self.depth = depth

    def issue(self, earliest: Optional[float] = None) -> float:
        """Issue one item into the pipeline; return the time its *result* is ready."""
        start = self.acquire(self.initiation_interval, earliest=earliest)
        return start + self.depth

    def issue_then(self, callback: Callable[..., None], *args) -> float:
        """Issue one item and schedule ``callback`` when it completes."""
        finish = self.issue()
        self.sim.schedule_fast(finish - self.sim.now, callback, *args)
        return finish
