"""Simulation-performance instrumentation (events/sec, packets/sec, heap size).

The ROADMAP's "fast as the hardware allows" goal needs a trajectory: every
optimisation PR should be able to show what the kernel sustains before and
after.  This module provides a lightweight way to measure whole-experiment
simulation throughput without threading collector objects through every
layer:

* a :class:`PerfSession` accumulates counters over a region of wall time,
* :func:`session` opens one as a context manager,
* :class:`~repro.sim.engine.Simulator` and
  :class:`~repro.noc.fabric.NocFabric` register a small
  :class:`PerfCounters` record with every open session at construction
  time, and the session sums those records when it closes.

Sessions hold only the counter records — never the simulators or fabrics
themselves — so a sweep that builds one SoC per data point lets each SoC be
garbage-collected as usual while its counters keep contributing to the
session totals.

Registration is process-local (campaign workers each get their own module
state) and costs one list append per constructed simulator/fabric, so it is
safe to leave enabled unconditionally.  When no session is open,
:func:`register_simulator`/:func:`register_fabric` only hand out a counter
record.

The numbers surface in two places: ``ExperimentResult.metadata.perf`` (every
spec-driven run is wrapped in a session) and the campaign report summary.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List

#: Sessions currently collecting (a stack; nested sessions each observe the
#: simulators/fabrics created while they are open).
_ACTIVE_SESSIONS: List["PerfSession"] = []


class PerfCounters:
    """Lifetime counters of one simulator or fabric (a few plain ints).

    The owning component updates these in place; sessions keep a reference
    to the record only, so the component itself stays collectable.
    """

    __slots__ = ("events", "packets", "peak_pending", "fused_hops", "fast_events",
                 "fault_windows", "fault_hits")

    def __init__(self) -> None:
        self.events = 0
        self.packets = 0
        self.peak_pending = 0
        #: NOC hops collapsed into their predecessor by lookahead hop fusion
        #: (each one is a hop event that never had to be scheduled).
        self.fused_hops = 0
        #: Events scheduled through the allocation-free fast path.
        self.fast_events = 0
        #: Fault windows activated by an installed fault injector.
        self.fault_windows = 0
        #: Fault hook invocations that actually perturbed the simulation
        #: (a deferred hop, a shed arrival, a retransmitted packet, ...).
        self.fault_hits = 0


class PerfSession:
    """Counters for one measured region of simulation work."""

    __slots__ = ("_counters", "_started_at", "wall_s",
                 "events", "packets", "peak_pending_events",
                 "fused_hops", "fast_events", "fault_windows", "fault_hits",
                 "_closed")

    def __init__(self) -> None:
        self._counters: List[PerfCounters] = []
        self._started_at = time.perf_counter()
        self._closed = False
        self.wall_s = 0.0
        self.events = 0
        self.packets = 0
        self.peak_pending_events = 0
        self.fused_hops = 0
        self.fast_events = 0
        self.fault_windows = 0
        self.fault_hits = 0

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def watch(self, counters: PerfCounters) -> None:
        self._counters.append(counters)

    def close(self) -> None:
        """Stop the wall clock and sum every watched counter record."""
        if self._closed:
            return
        self._closed = True
        self.wall_s = time.perf_counter() - self._started_at
        self.events = sum(counters.events for counters in self._counters)
        self.packets = sum(counters.packets for counters in self._counters)
        self.fused_hops = sum(counters.fused_hops for counters in self._counters)
        self.fast_events = sum(counters.fast_events for counters in self._counters)
        self.fault_windows = sum(counters.fault_windows for counters in self._counters)
        self.fault_hits = sum(counters.fault_hits for counters in self._counters)
        self.peak_pending_events = max(
            (counters.peak_pending for counters in self._counters), default=0
        )
        self._counters = []

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def packets_per_s(self) -> float:
        return self.packets / self.wall_s if self.wall_s > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """JSON-native counters (the ``ResultMetadata.perf`` payload)."""
        return {
            "events": float(self.events),
            "packets": float(self.packets),
            "wall_s": self.wall_s,
            "events_per_s": self.events_per_s,
            "packets_per_s": self.packets_per_s,
            "peak_pending_events": float(self.peak_pending_events),
            "fused_hops": float(self.fused_hops),
            "fast_events": float(self.fast_events),
            "fault_windows": float(self.fault_windows),
            "fault_hits": float(self.fault_hits),
        }


@contextmanager
def session() -> Iterator[PerfSession]:
    """Collect simulation-performance counters for the enclosed region."""
    current = PerfSession()
    _ACTIVE_SESSIONS.append(current)
    try:
        yield current
    finally:
        _ACTIVE_SESSIONS.remove(current)
        current.close()


def register_simulator(sim: Any) -> PerfCounters:
    """Called by ``Simulator.__init__``; returns the sim's counter record."""
    return _register()


def register_fabric(fabric: Any) -> PerfCounters:
    """Called by ``NocFabric.__init__``; returns the fabric's counter record."""
    return _register()


def register_faults(state: Any) -> PerfCounters:
    """Called by ``FaultState.__init__``; returns the state's counter record."""
    return _register()


def _register() -> PerfCounters:
    counters = PerfCounters()
    for active in _ACTIVE_SESSIONS:
        active.watch(counters)
    return counters
