"""Directory bookkeeping for the MESI protocol.

The directory is distributed: each tile's LLC slice owns the directory state
for the blocks statically interleaved to it.  This module only keeps the
*bookkeeping* (owner, sharers, LLC presence, busy/pending transactions); the
message choreography lives in :mod:`repro.coherence.protocol`.

The protocol is non-inclusive and non-notifying (§3.4): the directory may
track an inexact sharer set, which in this model simply means sharers are
removed lazily when an invalidation discovers the copy already gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

from repro.errors import CoherenceError


@dataclass
class DirectoryEntry:
    """Directory state for one cache block."""

    addr: int
    #: Entity id of the complex holding the block in M/E, if any.
    owner: Optional[Hashable] = None
    #: Entity ids of complexes holding the block in S.
    sharers: Set[Hashable] = field(default_factory=set)
    #: Whether the LLC slice has a (clean) copy of the data.
    in_llc: bool = False
    #: A transaction is currently in flight for this block.
    busy: bool = False
    #: Transactions waiting for the block to become free (FIFO).
    pending: List[object] = field(default_factory=list)

    def holders(self) -> Set[Hashable]:
        """Every complex that may hold a copy."""
        holders = set(self.sharers)
        if self.owner is not None:
            holders.add(self.owner)
        return holders

    def record_exclusive(self, entity: Hashable) -> None:
        """The block is now exclusively owned by ``entity``."""
        self.owner = entity
        self.sharers = set()

    def record_shared(self, entities: Set[Hashable]) -> None:
        """The block is now shared by ``entities`` (no exclusive owner)."""
        self.owner = None
        self.sharers = set(entities)


class DirectoryController:
    """Per-chip directory bookkeeping with static home interleaving."""

    def __init__(self, home_tile_count: int, block_bytes: int = 64) -> None:
        if home_tile_count <= 0:
            raise CoherenceError("directory needs at least one home tile")
        if block_bytes <= 0:
            raise CoherenceError("block size must be positive")
        self.home_tile_count = home_tile_count
        self.block_bytes = block_bytes
        self._entries: Dict[int, DirectoryEntry] = {}
        # Statistics
        self.transactions_started = 0
        self.transactions_queued = 0
        self.memory_fetches = 0

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def block_address(self, addr: int) -> int:
        """Align an address to its cache block."""
        return addr - (addr % self.block_bytes)

    def home_tile(self, addr: int) -> int:
        """Statically block-interleaved home LLC slice for ``addr`` (§3.1)."""
        return (self.block_address(addr) // self.block_bytes) % self.home_tile_count

    # ------------------------------------------------------------------
    # Entry access
    # ------------------------------------------------------------------
    def entry(self, addr: int) -> DirectoryEntry:
        """Directory entry for the block containing ``addr`` (created on demand)."""
        block = self.block_address(addr)
        entry = self._entries.get(block)
        if entry is None:
            entry = DirectoryEntry(addr=block)
            self._entries[block] = entry
        return entry

    def prewarm(self, addr: int) -> None:
        """Mark the block as present (clean) in the LLC.

        Used to set up the steady state of QP blocks before measurement so
        the very first access does not pay an unrepresentative DRAM fill.
        """
        self.entry(addr).in_llc = True

    def tracked_blocks(self) -> int:
        """Number of blocks with directory state (for diagnostics)."""
        return len(self._entries)
