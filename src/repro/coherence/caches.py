"""Cache models participating in the coherence protocol.

Three kinds of caches exist in the modelled chip:

* :class:`L1Cache` — a core's private data cache (3-cycle access, Table 2).
* :class:`NICache` — the small cache holding QP entries inside an NI (§3.4).
  In the edge design it is a stand-alone coherence agent with its own tile
  id; in the per-tile and split designs it is attached to the *back side* of
  the collocated core's L1, snooping its traffic, so the pair appears to the
  LLC's coherence domain as a single logical entity.
* :class:`TileCacheComplex` — that logical entity.  It tracks the *external*
  MESI state the directory granted (one state for the whole complex) plus
  which physical structure currently holds the copy and whether it is dirty.
  Moving a QP block between the L1 and the back-side NI cache is a local
  5-cycle transfer (the "WQ/CQ entry transfer" of Table 3) and never
  involves the directory; the OWNED-state optimization (§3.4) additionally
  lets the NI cache forward a *dirty* CQ block to the core without first
  writing it back to the LLC.

Capacity is not modelled: the QP footprint is a handful of blocks and the
paper sizes all data buffers to miss in every cache, so data accesses bypass
these structures entirely (§3.1: the NI cache "is bypassed by all of the
NI's data (non-QP) accesses").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set, Tuple

from repro.coherence.states import CacheState
from repro.errors import CoherenceError


class CacheArray:
    """One physical cache structure: copy presence, dirtiness and statistics."""

    def __init__(self, name: str, access_latency: int) -> None:
        if access_latency < 0:
            raise CoherenceError("cache access latency cannot be negative")
        self.name = name
        self.access_latency = access_latency
        self._present: Set[int] = set()
        self._dirty: Set[int] = set()
        # Statistics
        self.hits = 0
        self.misses = 0
        self.invalidations_received = 0
        self.writebacks = 0

    def has_copy(self, addr: int) -> bool:
        return addr in self._present

    def is_dirty(self, addr: int) -> bool:
        return addr in self._dirty

    def fill(self, addr: int, dirty: bool) -> None:
        """Install a copy of the block."""
        self._present.add(addr)
        if dirty:
            self._dirty.add(addr)
        else:
            self._dirty.discard(addr)

    def drop(self, addr: int) -> bool:
        """Remove the copy; returns True if dirty data was discarded."""
        dirty = addr in self._dirty
        self._present.discard(addr)
        self._dirty.discard(addr)
        return dirty

    def clean(self, addr: int) -> None:
        """Clear the dirty bit (after a write-back)."""
        self._dirty.discard(addr)

    def resident_blocks(self) -> Tuple[int, ...]:
        """Addresses currently cached (mainly for tests/diagnostics)."""
        return tuple(sorted(self._present))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(%s, %d blocks)" % (type(self).__name__, self.name, len(self._present))


class L1Cache(CacheArray):
    """A core's private L1 data cache."""

    def __init__(self, tile_id: int, access_latency: int = 3) -> None:
        super().__init__("l1[%d]" % tile_id, access_latency)
        self.tile_id = tile_id


class NICache(CacheArray):
    """The NI's QP cache (§3.4).

    ``owned_state_enabled`` selects whether the controller implements the
    OWNED optimization: on a local read of a MODIFIED block it forwards a
    clean copy and keeps the dirty data (the block becomes OWNED inside the
    NI cache) instead of writing back to the LLC first.
    """

    def __init__(self, name: str, access_latency: int = 2, owned_state_enabled: bool = True) -> None:
        super().__init__(name, access_latency)
        self.owned_state_enabled = owned_state_enabled
        #: Number of times the OWNED fast path avoided an LLC round trip.
        self.owned_fast_forwards = 0
        self._owned: Set[int] = set()

    def is_owned(self, addr: int) -> bool:
        """True when the block sits in the NI-cache-only OWNED state."""
        return addr in self._owned

    def mark_owned(self, addr: int) -> None:
        if not self.has_copy(addr):
            raise CoherenceError("cannot mark an absent block OWNED in %s" % self.name)
        self._owned.add(addr)
        self.owned_fast_forwards += 1

    def drop(self, addr: int) -> bool:
        self._owned.discard(addr)
        return super().drop(addr)

    def clean(self, addr: int) -> None:
        self._owned.discard(addr)
        super().clean(addr)


@dataclass
class LocalLookup:
    """Outcome of a lookup inside a tile's cache complex."""

    hit: bool
    latency: int
    #: True when the hit requires an LLC write-back first (owned-state ablation).
    requires_writeback: bool = False
    #: Which physical structure supplied the block ("l1", "ni", or None).
    source: Optional[str] = None


class TileCacheComplex:
    """The logical coherence entity at one requestor site.

    For per-tile and split NI designs the complex contains both the core's L1
    and the back-side NI cache; for the edge design, the core tiles contain
    only an L1 and each edge NI has its own complex containing only an NI
    cache.  The coherence directory tracks the complex, not the individual
    physical caches.
    """

    #: Latency of moving a QP block between the L1 and the back-side NI cache
    #: (the "WQ/CQ entry transfer" of Table 3).
    LOCAL_TRANSFER_CYCLES = 5

    def __init__(
        self,
        entity_id: Hashable,
        node: Hashable,
        l1: Optional[L1Cache] = None,
        ni_cache: Optional[NICache] = None,
    ) -> None:
        if l1 is None and ni_cache is None:
            raise CoherenceError("a cache complex needs at least one physical cache")
        self.entity_id = entity_id
        self.node = node
        self.l1 = l1
        self.ni_cache = ni_cache
        #: External MESI state granted by the directory, per block.
        self._external: Dict[int, CacheState] = {}
        self.local_transfers = 0

    # ------------------------------------------------------------------
    # Aggregate state, as seen by the directory
    # ------------------------------------------------------------------
    def state(self, addr: int) -> CacheState:
        """External state of the block for this logical entity."""
        return self._external.get(addr, CacheState.INVALID)

    def holds(self, addr: int) -> bool:
        return self.state(addr).readable

    def holds_dirty(self, addr: int) -> bool:
        return any(cache.is_dirty(addr) for cache in self._caches())

    def invalidate(self, addr: int) -> bool:
        """Invalidate every physical copy; returns True if dirty data was dropped."""
        dirty = False
        for cache in self._caches():
            cache.invalidations_received += 1
            dirty = cache.drop(addr) or dirty
        self._external.pop(addr, None)
        return dirty

    def downgrade(self, addr: int) -> None:
        """Transition to SHARED (response to a Fwd); dirty data is written back."""
        if self.state(addr) is CacheState.INVALID:
            return
        self._external[addr] = CacheState.SHARED
        for cache in self._caches():
            if cache.has_copy(addr):
                cache.clean(addr)

    def install(self, addr: int, state: CacheState, into: str) -> None:
        """Install a block arriving from the directory into one physical cache."""
        if state is CacheState.INVALID:
            raise CoherenceError("cannot install a block in the INVALID state")
        cache = self._cache_for(into)
        other = self._other_cache(cache)
        self._external[addr] = state
        cache.fill(addr, dirty=(state is CacheState.MODIFIED))
        if other is not None:
            other.drop(addr)

    # ------------------------------------------------------------------
    # Local (intra-complex) lookups
    # ------------------------------------------------------------------
    def local_lookup(self, requester: str, addr: int, write: bool) -> LocalLookup:
        """Resolve an access locally if the complex's external state permits it.

        ``requester`` is "core" (the access comes from the core through its
        L1) or "ni" (the access comes from the NI frontend through the NI
        cache).  The external state never changes here; only the location of
        the copy (and the dirty bit) moves between the physical structures.
        """
        primary, secondary = self._lookup_order(requester)
        external = self.state(addr)
        permitted = external.writable if write else external.readable
        if not permitted:
            primary.misses += 1
            return LocalLookup(hit=False, latency=primary.access_latency)
        if primary.has_copy(addr) and (not write or external.writable):
            primary.hits += 1
            if write:
                primary.fill(addr, dirty=True)
                if secondary is not None and secondary.has_copy(addr):
                    secondary.drop(addr)
            return LocalLookup(hit=True, latency=primary.access_latency,
                               source=self._name_of(primary))
        if secondary is None or not secondary.has_copy(addr):
            # Permission exists but no structure actually holds data; treat as
            # a miss so the protocol re-fetches (can happen after an internal
            # drop).  Rare in practice.
            primary.misses += 1
            return LocalLookup(hit=False, latency=primary.access_latency)
        # The block moves between the L1 and the back-side NI cache.
        self.local_transfers += 1
        secondary.hits += 1
        latency = primary.access_latency + self.LOCAL_TRANSFER_CYCLES
        requires_writeback = False
        if write:
            secondary.drop(addr)
            primary.fill(addr, dirty=True)
        else:
            dirty = secondary.is_dirty(addr)
            if dirty and isinstance(secondary, NICache):
                if secondary.owned_state_enabled:
                    # OWNED fast path: forward a clean copy, keep the dirty data.
                    secondary.mark_owned(addr)
                    primary.fill(addr, dirty=False)
                else:
                    # The NI cache must write the block back to the LLC first.
                    requires_writeback = True
                    secondary.writebacks += 1
                    secondary.clean(addr)
                    primary.fill(addr, dirty=False)
            else:
                # Forward a copy; dirtiness (if any) stays with the holder.
                primary.fill(addr, dirty=False)
        return LocalLookup(
            hit=True,
            latency=latency,
            requires_writeback=requires_writeback,
            source=self._name_of(secondary),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _caches(self):
        return [c for c in (self.l1, self.ni_cache) if c is not None]

    def _other_cache(self, cache: CacheArray) -> Optional[CacheArray]:
        if cache is self.l1:
            return self.ni_cache
        return self.l1

    def _lookup_order(self, requester: str):
        if requester == "core":
            if self.l1 is None:
                raise CoherenceError("complex %r has no L1 but received a core access" % (self.entity_id,))
            return self.l1, self.ni_cache
        if requester == "ni":
            if self.ni_cache is None:
                raise CoherenceError("complex %r has no NI cache but received an NI access" % (self.entity_id,))
            return self.ni_cache, self.l1
        raise CoherenceError("unknown requester kind %r" % requester)

    def _cache_for(self, name: str) -> CacheArray:
        if name == "core":
            if self.l1 is None:
                raise CoherenceError("complex %r has no L1" % (self.entity_id,))
            return self.l1
        if name == "ni":
            if self.ni_cache is None:
                raise CoherenceError("complex %r has no NI cache" % (self.entity_id,))
            return self.ni_cache
        raise CoherenceError("unknown physical cache %r" % name)

    @staticmethod
    def _name_of(cache: CacheArray) -> str:
        return "ni" if isinstance(cache, NICache) else "l1"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TileCacheComplex(%r @ %r)" % (self.entity_id, self.node)
