"""On-chip cache-coherence substrate.

Models the directory-based, non-inclusive, invalidation MESI protocol of
Table 2 at message granularity: every coherence transaction (GetX / GetRO /
Invalidate / Fwd / Data / InvAck / Unblock) becomes NOC packets with the hop
and serialization latencies of the configured topology, so the QP
ping-ponging that dominates the NIedge design's latency (§3.1, Table 1)
emerges from the model rather than being hard-coded.

The NI cache of §3.4 is modelled by :class:`~repro.coherence.caches.NICache`:
it sits on the back side of the core's L1 (for the per-tile and split
designs) or as a stand-alone coherence agent at the chip edge (for the edge
design), and optionally implements the *owned*-state optimization that lets
it forward a dirty CQ block to the local core without a round trip to the
LLC.
"""

from repro.coherence.states import CacheState
from repro.coherence.messages import CoherenceMessageType, CoherenceMessage
from repro.coherence.caches import CacheArray, L1Cache, NICache, TileCacheComplex
from repro.coherence.directory import DirectoryController, DirectoryEntry
from repro.coherence.protocol import CoherenceProtocol, AccessResult

__all__ = [
    "CacheState",
    "CoherenceMessageType",
    "CoherenceMessage",
    "CacheArray",
    "L1Cache",
    "NICache",
    "TileCacheComplex",
    "DirectoryController",
    "DirectoryEntry",
    "CoherenceProtocol",
    "AccessResult",
]
