"""Cache block states.

The base protocol is MESI.  The additional OWNED state is only ever used by
the NI cache controller (§3.4): it marks a block whose dirty data the NI
cache still owns after forwarding a clean copy to the collocated core's L1,
so the block is written back to the LLC on eviction instead of immediately.
"""

from __future__ import annotations

import enum


class CacheState(enum.Enum):
    """MESI states plus the NI-cache-only OWNED state."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"
    #: NI-cache-only: dirty data retained after forwarding a clean copy.
    OWNED = "O"

    @property
    def readable(self) -> bool:
        """Whether a cache holding the block in this state may satisfy loads."""
        return self in (CacheState.MODIFIED, CacheState.EXCLUSIVE,
                        CacheState.SHARED, CacheState.OWNED)

    @property
    def writable(self) -> bool:
        """Whether a cache holding the block in this state may satisfy stores."""
        return self in (CacheState.MODIFIED, CacheState.EXCLUSIVE)

    @property
    def dirty(self) -> bool:
        """Whether this copy must eventually be written back."""
        return self in (CacheState.MODIFIED, CacheState.OWNED)
