"""Coherence protocol messages.

Each message type carries either a control payload (8 bytes on the wire,
i.e. one extra flit on the 16-byte links) or a full cache block (64 bytes,
four extra flits).  Messages sourced by a directory/LLC slice are tagged with
the DIRECTORY_SOURCED class so the paper's extended-CDR routing can steer
them YX (§4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable

from repro.config import CACHE_BLOCK_BYTES, MessageClass

#: Wire payload of a control (dataless) coherence message.
CONTROL_PAYLOAD_BYTES = 8


class CoherenceMessageType(enum.Enum):
    """Message vocabulary of the 3-hop invalidation MESI protocol (§3.1)."""

    GET_EXCLUSIVE = "GetX"
    GET_READ_ONLY = "GetRO"
    INVALIDATE = "Invalidate"
    INV_ACK = "InvACK"
    MISS_NOTIFY_DATA = "MissNotifyData"
    FWD_GET = "ReadFwd"
    DATA_REPLY = "ReadReply"
    WRITEBACK = "WriteBack"
    UNBLOCK = "Unblock"

    @property
    def carries_data(self) -> bool:
        """Whether the message carries a full cache block."""
        return self in (
            CoherenceMessageType.MISS_NOTIFY_DATA,
            CoherenceMessageType.DATA_REPLY,
            CoherenceMessageType.WRITEBACK,
        )

    @property
    def payload_bytes(self) -> int:
        """Wire payload size of this message type."""
        return CACHE_BLOCK_BYTES if self.carries_data else CONTROL_PAYLOAD_BYTES


#: Message types that originate at a directory / LLC slice.
_DIRECTORY_SOURCED = frozenset(
    {
        CoherenceMessageType.INVALIDATE,
        CoherenceMessageType.MISS_NOTIFY_DATA,
        CoherenceMessageType.FWD_GET,
    }
)


def message_class(msg_type: CoherenceMessageType, from_directory: bool) -> MessageClass:
    """NOC routing class for a coherence message."""
    if from_directory or msg_type in _DIRECTORY_SOURCED:
        return MessageClass.DIRECTORY_SOURCED
    if msg_type in (CoherenceMessageType.GET_EXCLUSIVE, CoherenceMessageType.GET_READ_ONLY):
        return MessageClass.COHERENCE_REQUEST
    return MessageClass.COHERENCE_RESPONSE


@dataclass
class CoherenceMessage:
    """A coherence message in flight (carried as a NOC packet payload)."""

    msg_type: CoherenceMessageType
    addr: int
    src: Hashable
    dst: Hashable
    transaction_id: int

    @property
    def payload_bytes(self) -> int:
        return self.msg_type.payload_bytes
