"""Message-level choreography of the MESI directory protocol.

:class:`CoherenceProtocol` turns read/write requests from the registered
cache complexes (cores' L1s, NI caches, or collocated pairs) into the
sequences of NOC messages shown in the paper's Fig. 2:

* a **write** that misses (GetX) travels to the block's home directory, which
  invalidates every sharer and forwards the data; the requester resumes only
  after the data *and* every invalidation acknowledgement arrive (3-hop
  invalidation protocol);
* a **read** that misses (GetRO) either gets the data from the LLC slice or,
  when another cache holds the block modified, triggers a forward to the
  owner which supplies the data and downgrades (writing back to the LLC).

The directory is *blocking*: while a transaction for a block is outstanding,
later requests for the same block queue at the home slice.  This both keeps
the model race-free and reproduces the serialization that makes WQ/CQ blocks
ping-pong between a core and an edge NI.

All on-chip transfers go through :class:`~repro.noc.fabric.NocFabric`, so hop
counts, serialization and link contention are accounted naturally for every
protocol message.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

from repro.coherence.caches import TileCacheComplex
from repro.coherence.directory import DirectoryController, DirectoryEntry
from repro.coherence.messages import (
    CoherenceMessage,
    CoherenceMessageType,
    message_class,
)
from repro.coherence.states import CacheState
from repro.errors import CoherenceError
from repro.noc.fabric import NocFabric
from repro.sim.engine import Simulator

#: Fixed controller occupancy charged at each protocol endpoint, on top of
#: the structure's access latency (MSHR allocation, state lookup, message
#: formatting).  A small constant typical of aggressive coherence controllers.
CONTROLLER_OVERHEAD_CYCLES = 2


@dataclass
class AccessResult:
    """Completion record handed to the requester's callback."""

    addr: int
    write: bool
    start_time: float
    complete_time: float
    served_locally: bool
    #: Physical structure that supplied the block for local hits ("l1"/"ni").
    local_source: Optional[str] = None

    @property
    def latency(self) -> float:
        return self.complete_time - self.start_time


@dataclass
class _Transaction:
    """Book-keeping for one outstanding remote coherence transaction."""

    txn_id: int
    complex: TileCacheComplex
    requester_kind: str
    addr: int
    write: bool
    start_time: float
    on_done: Callable[[AccessResult], None]
    home_tile: int = 0
    home_node: Hashable = None
    acks_needed: int = 0
    acks_received: int = 0
    data_received: bool = False
    completed: bool = False
    #: Directory dispatch retries forced by an active coherence fault model.
    retries: int = 0


class CoherenceProtocol:
    """Drives MESI transactions over the NOC fabric."""

    def __init__(
        self,
        sim: Simulator,
        fabric: NocFabric,
        directory: DirectoryController,
        home_node_of_tile: Callable[[int], Hashable],
        llc_latency_cycles: int = 6,
        memory_access: Optional[Callable[[Hashable, int, Callable[[], None]], None]] = None,
        fallback_memory_latency_cycles: int = 100,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.directory = directory
        self.home_node_of_tile = home_node_of_tile
        self.llc_latency_cycles = llc_latency_cycles
        self.memory_access = memory_access
        self.fallback_memory_latency_cycles = fallback_memory_latency_cycles
        self._complexes: Dict[Hashable, TileCacheComplex] = {}
        self._txn_ids = itertools.count()
        #: Fault-state attachment point (set by the FaultInjector; None on
        #: fault-free runs, which must stay byte-identical).
        self.faults = None
        # Statistics
        self.local_hits = 0
        self.remote_transactions = 0
        self.invalidations_sent = 0
        self.forwards_sent = 0
        self.local_writeback_roundtrips = 0
        self.directory_retries = 0
        self.retry_backoff_cycles = 0.0

    # ------------------------------------------------------------------
    # Registration and setup
    # ------------------------------------------------------------------
    def register_complex(self, complex_: TileCacheComplex) -> None:
        """Register a coherence entity (a tile's L1[+NI cache] or an edge NI cache)."""
        if complex_.entity_id in self._complexes:
            raise CoherenceError("entity %r registered twice" % (complex_.entity_id,))
        self._complexes[complex_.entity_id] = complex_

    def complex_of(self, entity_id: Hashable) -> TileCacheComplex:
        try:
            return self._complexes[entity_id]
        except KeyError:
            raise CoherenceError("unknown coherence entity %r" % (entity_id,)) from None

    def prewarm(self, addr: int) -> None:
        """Mark a block clean-in-LLC (steady-state setup for QP blocks)."""
        self.directory.prewarm(addr)

    # ------------------------------------------------------------------
    # Public access API
    # ------------------------------------------------------------------
    def access(
        self,
        entity_id: Hashable,
        requester_kind: str,
        addr: int,
        write: bool,
        on_done: Callable[[AccessResult], None],
    ) -> None:
        """Perform a coherent read (``write=False``) or write to ``addr``.

        ``requester_kind`` identifies which side of the complex issues the
        access: "core" (through the L1) or "ni" (through the NI cache).
        ``on_done`` is invoked, at completion time, with an
        :class:`AccessResult`.
        """
        complex_ = self.complex_of(entity_id)
        start = self.sim.now
        lookup = complex_.local_lookup(requester_kind, addr, write)
        if lookup.hit:
            self.local_hits += 1
            if lookup.requires_writeback:
                # Owned-state optimization disabled: write the dirty block
                # back to the LLC before the local forward may complete.
                self.local_writeback_roundtrips += 1
                self._writeback_roundtrip(complex_, addr, lookup.latency, start, write,
                                          lookup.source, on_done)
                return
            self.sim.schedule_fast(
                lookup.latency,
                self._complete_local,
                complex_, addr, write, start, lookup.source, on_done,
            )
            return
        # Miss inside the complex: start a remote transaction after the
        # local lookup latency (miss determination).
        txn = _Transaction(
            txn_id=next(self._txn_ids),
            complex=complex_,
            requester_kind=requester_kind,
            addr=self.directory.block_address(addr),
            write=write,
            start_time=start,
            on_done=on_done,
        )
        txn.home_tile = self.directory.home_tile(addr)
        txn.home_node = self.home_node_of_tile(txn.home_tile)
        self.remote_transactions += 1
        self.sim.schedule_fast(lookup.latency + CONTROLLER_OVERHEAD_CYCLES, self._send_request, txn)

    def zero_load_miss_latency_estimate(self, src_node: Hashable, home_node: Hashable) -> float:
        """Analytical helper: request + data reply latency on an idle NOC."""
        request = self.fabric.zero_load_latency(src_node, home_node, 8)
        reply = self.fabric.zero_load_latency(home_node, src_node, 64)
        return request + self.llc_latency_cycles + 2 * CONTROLLER_OVERHEAD_CYCLES + reply

    # ------------------------------------------------------------------
    # Local completion paths
    # ------------------------------------------------------------------
    def _complete_local(
        self,
        complex_: TileCacheComplex,
        addr: int,
        write: bool,
        start: float,
        source: Optional[str],
        on_done: Callable[[AccessResult], None],
    ) -> None:
        on_done(
            AccessResult(
                addr=addr,
                write=write,
                start_time=start,
                complete_time=self.sim.now,
                served_locally=True,
                local_source=source,
            )
        )

    def _writeback_roundtrip(
        self,
        complex_: TileCacheComplex,
        addr: int,
        local_latency: int,
        start: float,
        write: bool,
        source: Optional[str],
        on_done: Callable[[AccessResult], None],
    ) -> None:
        home_tile = self.directory.home_tile(addr)
        home_node = self.home_node_of_tile(home_tile)
        entry = self.directory.entry(addr)

        def after_ack(_packet) -> None:
            self._complete_local(complex_, addr, write, start, source, on_done)

        def at_home(_packet) -> None:
            entry.in_llc = True
            self.fabric.send(
                home_node,
                complex_.node,
                CoherenceMessageType.UNBLOCK.payload_bytes,
                message_class(CoherenceMessageType.UNBLOCK, from_directory=True),
                after_ack,
            )

        def send_writeback() -> None:
            self.fabric.send(
                complex_.node,
                home_node,
                CoherenceMessageType.WRITEBACK.payload_bytes,
                message_class(CoherenceMessageType.WRITEBACK, from_directory=False),
                lambda pkt: self.sim.schedule_fast(self.llc_latency_cycles, at_home, pkt),
            )

        self.sim.schedule_fast(local_latency, send_writeback)

    # ------------------------------------------------------------------
    # Remote transaction choreography
    # ------------------------------------------------------------------
    def _send_request(self, txn: _Transaction) -> None:
        msg_type = (
            CoherenceMessageType.GET_EXCLUSIVE if txn.write else CoherenceMessageType.GET_READ_ONLY
        )
        self.fabric.send(
            txn.complex.node,
            txn.home_node,
            msg_type.payload_bytes,
            message_class(msg_type, from_directory=False),
            lambda pkt: self._arrive_at_directory(txn),
            payload=CoherenceMessage(msg_type, txn.addr, txn.complex.node, txn.home_node, txn.txn_id),
        )

    def _arrive_at_directory(self, txn: _Transaction) -> None:
        entry = self.directory.entry(txn.addr)
        if entry.busy:
            self.directory.transactions_queued += 1
            entry.pending.append(txn)
            return
        entry.busy = True
        self.directory.transactions_started += 1
        self.sim.schedule_fast(self.llc_latency_cycles, self._directory_act, txn, entry)

    def _directory_act(self, txn: _Transaction, entry: DirectoryEntry) -> None:
        faults = self.faults
        if faults is not None:
            # A stale/corrupt directory entry bounces this dispatch: charge
            # the model's backoff and re-ask.  Models bound their retries,
            # so the loop terminates even inside a long fault window.
            backoff = faults.directory_retry(txn.addr, txn.retries)
            if backoff > 0.0:
                txn.retries += 1
                self.directory_retries += 1
                self.retry_backoff_cycles += backoff
                self.sim.schedule_fast(backoff, self._directory_act, txn, entry)
                return
        requester_id = txn.complex.entity_id
        owner = entry.owner if entry.owner != requester_id else None
        sharers = {s for s in entry.sharers if s != requester_id}
        if txn.write:
            self._handle_write_at_directory(txn, entry, owner, sharers)
        else:
            self._handle_read_at_directory(txn, entry, owner)

    # -- writes --------------------------------------------------------
    def _handle_write_at_directory(
        self,
        txn: _Transaction,
        entry: DirectoryEntry,
        owner: Optional[Hashable],
        sharers,
    ) -> None:
        requester_id = txn.complex.entity_id
        if owner is not None:
            # 3-hop forward: the owner supplies the data and invalidates itself.
            self.forwards_sent += 1
            owner_complex = self.complex_of(owner)
            self._send_forward(txn, entry, owner_complex, invalidate_owner=True)
        else:
            txn.acks_needed = len(sharers)
            for sharer in sharers:
                self._send_invalidate(txn, entry, self.complex_of(sharer))
            self._send_data_from_home(txn, entry)
        entry.record_exclusive(requester_id)

    # -- reads ---------------------------------------------------------
    def _handle_read_at_directory(
        self,
        txn: _Transaction,
        entry: DirectoryEntry,
        owner: Optional[Hashable],
    ) -> None:
        requester_id = txn.complex.entity_id
        if owner is not None and self.complex_of(owner).holds_dirty(txn.addr):
            self.forwards_sent += 1
            owner_complex = self.complex_of(owner)
            self._send_forward(txn, entry, owner_complex, invalidate_owner=False)
            entry.record_shared({owner, requester_id})
            entry.in_llc = True  # the owner writes back a copy
        else:
            if owner is not None:
                # Clean-exclusive owner: silently downgrade it to shared.
                self.complex_of(owner).downgrade(txn.addr)
                entry.sharers.add(owner)
                entry.owner = None
            txn.acks_needed = 0
            self._send_data_from_home(txn, entry)
            entry.sharers.add(requester_id)

    # -- message helpers ------------------------------------------------
    def _send_invalidate(self, txn: _Transaction, entry: DirectoryEntry,
                         target: TileCacheComplex) -> None:
        self.invalidations_sent += 1
        msg = CoherenceMessageType.INVALIDATE

        def at_target(_packet) -> None:
            delay = CONTROLLER_OVERHEAD_CYCLES
            if target.l1 is not None:
                delay += target.l1.access_latency
            elif target.ni_cache is not None:
                delay += target.ni_cache.access_latency
            target.invalidate(txn.addr)
            self.sim.schedule_fast(delay, self._send_inv_ack, txn, target)

        self.fabric.send(
            txn.home_node, target.node, msg.payload_bytes,
            message_class(msg, from_directory=True), at_target,
        )

    def _send_inv_ack(self, txn: _Transaction, target: TileCacheComplex) -> None:
        msg = CoherenceMessageType.INV_ACK
        self.fabric.send(
            target.node, txn.complex.node, msg.payload_bytes,
            message_class(msg, from_directory=False),
            lambda pkt: self._ack_arrived(txn),
        )

    def _ack_arrived(self, txn: _Transaction) -> None:
        txn.acks_received += 1
        self._maybe_complete(txn)

    def _send_data_from_home(self, txn: _Transaction, entry: DirectoryEntry) -> None:
        msg = CoherenceMessageType.MISS_NOTIFY_DATA

        def dispatch() -> None:
            self.fabric.send(
                txn.home_node, txn.complex.node, msg.payload_bytes,
                message_class(msg, from_directory=True),
                lambda pkt: self._data_arrived(txn),
            )

        if entry.in_llc:
            dispatch()
        else:
            # The LLC slice does not have the block: fetch it from memory.
            self.directory.memory_fetches += 1
            entry.in_llc = True
            if self.memory_access is not None:
                self.memory_access(txn.home_node, txn.addr, dispatch)
            else:
                self.sim.schedule_fast(self.fallback_memory_latency_cycles, dispatch)

    def _send_forward(self, txn: _Transaction, entry: DirectoryEntry,
                      owner_complex: TileCacheComplex, invalidate_owner: bool) -> None:
        fwd = CoherenceMessageType.FWD_GET

        def at_owner(_packet) -> None:
            delay = CONTROLLER_OVERHEAD_CYCLES
            if owner_complex.l1 is not None:
                delay += owner_complex.l1.access_latency
            elif owner_complex.ni_cache is not None:
                delay += owner_complex.ni_cache.access_latency
            self.sim.schedule_fast(delay, owner_responds)

        def owner_responds() -> None:
            if invalidate_owner:
                owner_complex.invalidate(txn.addr)
            else:
                owner_complex.downgrade(txn.addr)
                # Keep the LLC copy up to date (off the critical path).
                wb = CoherenceMessageType.WRITEBACK
                self.fabric.send(
                    owner_complex.node, txn.home_node, wb.payload_bytes,
                    message_class(wb, from_directory=False), None,
                )
            reply = CoherenceMessageType.DATA_REPLY
            self.fabric.send(
                owner_complex.node, txn.complex.node, reply.payload_bytes,
                message_class(reply, from_directory=False),
                lambda pkt: self._data_arrived(txn),
            )

        self.fabric.send(
            txn.home_node, owner_complex.node, fwd.payload_bytes,
            message_class(fwd, from_directory=True), at_owner,
        )

    # -- completion ------------------------------------------------------
    def _data_arrived(self, txn: _Transaction) -> None:
        txn.data_received = True
        self._maybe_complete(txn)

    def _maybe_complete(self, txn: _Transaction) -> None:
        if txn.completed:
            return
        if not txn.data_received or txn.acks_received < txn.acks_needed:
            return
        txn.completed = True
        install_latency = CONTROLLER_OVERHEAD_CYCLES
        if txn.requester_kind == "core" and txn.complex.l1 is not None:
            install_latency += txn.complex.l1.access_latency
        elif txn.complex.ni_cache is not None:
            install_latency += txn.complex.ni_cache.access_latency
        state = CacheState.MODIFIED if txn.write else CacheState.SHARED
        into = "core" if (txn.requester_kind == "core" and txn.complex.l1 is not None) else "ni"
        txn.complex.install(txn.addr, state, into)
        self.sim.schedule_fast(install_latency, self._finish, txn)

    def _finish(self, txn: _Transaction) -> None:
        txn.on_done(
            AccessResult(
                addr=txn.addr,
                write=txn.write,
                start_time=txn.start_time,
                complete_time=self.sim.now,
                served_locally=False,
            )
        )
        # Unblock the home directory (off the requester's critical path).
        msg = CoherenceMessageType.UNBLOCK
        self.fabric.send(
            txn.complex.node, txn.home_node, msg.payload_bytes,
            message_class(msg, from_directory=False),
            lambda pkt: self._unblock(txn.addr),
        )

    def _unblock(self, addr: int) -> None:
        entry = self.directory.entry(addr)
        entry.busy = False
        if entry.pending:
            next_txn = entry.pending.pop(0)
            self._arrive_at_directory(next_txn)
