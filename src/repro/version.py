"""Version information for the repro package."""

__version__ = "1.0.0"

#: Paper reproduced by this library.
PAPER_TITLE = "Manycore Network Interfaces for In-Memory Rack-Scale Computing"
PAPER_VENUE = "ISCA 2015"
PAPER_AUTHORS = (
    "Alexandros Daglis",
    "Stanko Novakovic",
    "Edouard Bugnion",
    "Babak Falsafi",
    "Boris Grot",
)
