"""The schema'd, round-trippable record of one exploration.

An :class:`ExploreReport` is plain data — the experiment, strategy, seed and
budget that defined the search, the space it walked, every evaluation in
order, the Pareto set, the sensitivity ranking and the per-round ledger —
validated against the ``repro-explore-report/1`` schema on load.

Two properties are deliberate:

* **No wall-clock fields.**  The report is a pure function of the seed and
  the space, so a fixed ``--seed`` reproduces it *byte-for-byte* across
  repeat runs and ``--parallel`` worker counts; tests and CI diff report
  bytes directly.
* **Round-trippable.**  ``from_json(report.to_json())`` reconstructs an
  equal report; downstream tooling can archive, diff and re-render
  explorations without re-running anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.errors import ExploreError

#: Schema tag written by :meth:`ExploreReport.to_dict` and required on load.
SCHEMA = "repro-explore-report/1"


@dataclass
class ExploreReport:
    """Everything one exploration produced, as JSON-native data."""

    experiment: str
    strategy: str
    seed: int
    budget: int
    objectives: List[Dict[str, object]] = field(default_factory=list)
    strategy_params: Dict[str, object] = field(default_factory=dict)
    space: Dict[str, object] = field(default_factory=dict)
    evaluations: List[Dict[str, object]] = field(default_factory=list)
    rounds: List[Dict[str, int]] = field(default_factory=list)
    pareto: List[Dict[str, object]] = field(default_factory=list)
    sensitivity: List[Dict[str, object]] = field(default_factory=list)
    totals: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "experiment": self.experiment,
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "objectives": self.objectives,
            "strategy_params": self.strategy_params,
            "space": self.space,
            "evaluations": self.evaluations,
            "rounds": self.rounds,
            "pareto": self.pareto,
            "sensitivity": self.sensitivity,
            "totals": self.totals,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExploreReport":
        if not isinstance(payload, Mapping):
            raise ExploreError("explore report document must be a JSON object")
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ExploreError(
                "unsupported explore report schema %r (expected %r)"
                % (schema, SCHEMA)
            )
        try:
            return cls(
                experiment=str(payload["experiment"]),
                strategy=str(payload["strategy"]),
                seed=int(payload["seed"]),
                budget=int(payload["budget"]),
                objectives=list(payload.get("objectives", [])),
                strategy_params=dict(payload.get("strategy_params", {})),
                space=dict(payload.get("space", {})),
                evaluations=list(payload.get("evaluations", [])),
                rounds=list(payload.get("rounds", [])),
                pareto=list(payload.get("pareto", [])),
                sensitivity=list(payload.get("sensitivity", [])),
                totals=dict(payload.get("totals", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExploreError("malformed explore report document: %s" % exc) from None

    def to_json(self, indent: Optional[int] = 2) -> str:
        # sort_keys makes the byte-identity contract independent of dict
        # construction order anywhere upstream.
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExploreReport":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExploreError("invalid explore report JSON: %s" % exc) from None
        return cls.from_dict(payload)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format(self) -> str:
        """Human-readable Pareto set + sensitivity ranking + totals line."""
        parts = [self._format_pareto(), self._format_sensitivity(), self.summary()]
        return "\n\n".join(part for part in parts if part)

    def summary(self) -> str:
        totals = self.totals
        line = (
            "explore: %s via %s (seed %d, budget %d): "
            "%d evaluation(s) over %d round(s), %d cached, %d feasible"
            % (self.experiment, self.strategy, self.seed, self.budget,
               totals.get("evaluations", len(self.evaluations)),
               len(self.rounds), totals.get("cached", 0),
               totals.get("feasible", 0))
        )
        failed = totals.get("failed", 0)
        if failed:
            line += ", %d failed" % failed
        infeasible = totals.get("infeasible", 0)
        if infeasible:
            line += ", %d infeasible" % infeasible
        size = totals.get("space_size")
        if size:
            line += "; space size %d" % size
        return line

    def _format_pareto(self) -> str:
        if not self.pareto:
            return "Pareto front: empty (no feasible evaluations)"
        dimension_names = [
            dimension.get("name", "?")
            for dimension in self.space.get("dimensions", [])
        ]
        objective_names = [
            objective.get("name", "?") for objective in self.objectives
        ]
        headers = ["#"] + dimension_names + objective_names
        rows: List[List[str]] = []
        for entry in self.pareto:
            point = entry.get("point", {})
            objectives = entry.get("objectives", {})
            rows.append(
                [str(entry.get("index", "?"))]
                + [_cell(point.get(name)) for name in dimension_names]
                + [_cell(objectives.get(name)) for name in objective_names]
            )
        title = "Pareto front (%d of %d evaluated point(s)):" % (
            len(self.pareto), len(self.evaluations),
        )
        return title + "\n" + _table(headers, rows)

    def _format_sensitivity(self) -> str:
        if not self.sensitivity:
            return ""
        headers = ["dimension", "effect"] + [
            objective.get("name", "?") for objective in self.objectives
        ] + ["levels"]
        rows: List[List[str]] = []
        for row in self.sensitivity:
            per_objective = row.get("per_objective", {})
            rows.append(
                [str(row.get("dimension", "?")), _cell(row.get("effect"))]
                + [_cell(per_objective.get(header)) for header in headers[2:-1]]
                + [str(row.get("levels_observed", 0))]
            )
        return "sensitivity (normalized main effects):\n" + _table(headers, rows)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return "%.4g" % value
    if isinstance(value, list):
        return ":".join(str(item) for item in value)
    return str(value)


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    lines = [
        "  " + "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    ]
    for row in rows:
        lines.append(
            "  " + "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(line.rstrip() for line in lines)


def load_explore_report(path: str) -> ExploreReport:
    """Load a report written by :meth:`ExploreReport.write_json`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return ExploreReport.from_json(handle.read())
    except OSError as exc:
        raise ExploreError("cannot read explore report %s: %s" % (path, exc)) from None
