"""Design-space exploration: search strategies over cached campaigns.

The seventh scenario axis: search strategies are registered components
(:data:`repro.scenario.registry.EXPLORE_STRATEGIES`) that walk a
:class:`SearchSpace` quantized from an experiment's declared parameters.
The :class:`Explorer` compiles each strategy round onto the campaign layer
(result caching, ``--parallel`` pools, perf counters and fingerprints for
free) and distils the evaluated points into a Pareto front, a main-effects
sensitivity ranking and a byte-reproducible :class:`ExploreReport`.  See
the README's "Exploring the design space" section for usage.
"""

from repro.explore.engine import Evaluation, Explorer
from repro.explore.objectives import (
    OBJECTIVES,
    Objective,
    extract_all,
    resolve_objectives,
)
from repro.explore.pareto import ParetoEntry, ParetoFront, dominates
from repro.explore.report import ExploreReport, SCHEMA, load_explore_report
from repro.explore.sensitivity import SensitivityRow, main_effects
from repro.explore.space import (
    SearchDimension,
    SearchSpace,
    build_space,
    default_dimensions,
    parse_dimension,
)
from repro.explore.strategies import SearchStrategy

__all__ = [
    "Evaluation",
    "Explorer",
    "ExploreReport",
    "OBJECTIVES",
    "Objective",
    "ParetoEntry",
    "ParetoFront",
    "SCHEMA",
    "SearchDimension",
    "SearchSpace",
    "SearchStrategy",
    "SensitivityRow",
    "build_space",
    "default_dimensions",
    "dominates",
    "extract_all",
    "load_explore_report",
    "main_effects",
    "parse_dimension",
    "resolve_objectives",
]
