"""The exploration engine: strategy rounds compiled onto campaigns.

The :class:`Explorer` owns the conversation between a search strategy and
the campaign layer.  Each round it asks the strategy for the next batch of
points, deduplicates them against everything already evaluated, clips the
batch to the unspent budget, compiles the survivors to
:class:`~repro.campaign.request.RunRequest` objects and executes them
through one :class:`~repro.campaign.runner.Campaign` — which is what makes
result caching, ``--parallel`` process pools, perf counters and content
fingerprints free here: the engine never touches the simulator directly.

Determinism contract: for a fixed seed the engine produces the exact same
evaluation sequence, Pareto set and report bytes across repeat runs and
worker counts.  The strategy sees evaluations strictly in submission order
(the campaign preserves request order regardless of pool width), all
randomness comes from the strategy's seeded RNG, and the report carries no
wall-clock fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.campaign.cache import ResultCache
from repro.campaign.runner import Campaign
from repro.errors import ExploreError
from repro.explore.objectives import Objective, extract_all, resolve_objectives
from repro.explore.pareto import ParetoEntry, ParetoFront
from repro.explore.report import ExploreReport
from repro.explore.sensitivity import main_effects
from repro.explore.space import SearchSpace
from repro.explore.strategies import SearchStrategy
from repro.scenario.registry import EXPLORE_STRATEGIES


@dataclass(frozen=True)
class Evaluation:
    """One evaluated design point, in evaluation order."""

    index: int
    point: Mapping[str, object]
    fingerprint: str
    cached: bool = False
    error: Optional[str] = None
    #: Objective name -> value; None marks "not measurable on this result".
    objectives: Mapping[str, Optional[float]] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """Whether the point ran and yielded every requested objective."""
        return self.error is None and all(
            value is not None for value in self.objectives.values()
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "point": dict(self.point),
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "error": self.error,
            "objectives": dict(self.objectives),
            "feasible": self.feasible,
        }


class Explorer:
    """Drives one exploration of a search space to an :class:`ExploreReport`."""

    def __init__(
        self,
        space: SearchSpace,
        strategy: str = "evolve",
        objectives: Sequence[Union[str, Objective]] = ("saturation", "p99", "cost"),
        seed: int = 0,
        budget: int = 16,
        strategy_params: Optional[Mapping[str, object]] = None,
        cache: Optional[ResultCache] = None,
        max_workers: int = 1,
        max_rounds: int = 64,
        obs: Optional[object] = None,
    ) -> None:
        if max_rounds < 1:
            raise ExploreError("exploration max_rounds must be >= 1")
        self.space = space
        self.strategy_name = strategy
        self.objectives = tuple(
            item if isinstance(item, Objective) else None
            for item in objectives
        )
        if any(objective is None for objective in self.objectives):
            self.objectives = resolve_objectives(
                [item if isinstance(item, str) else item.name for item in objectives]
            )
        self.seed = int(seed)
        self.budget = int(budget)
        self.cache = cache
        self.max_workers = int(max_workers)
        self.max_rounds = int(max_rounds)
        #: Active :class:`repro.obs.session.ObsSession` (or ``None``):
        #: threaded through each round's campaign and used to stream
        #: ``explore_round`` / ``explore_point`` progress events with
        #: rolling objective values.
        self.obs = obs
        self.strategy_params = dict(strategy_params or {})
        strategy_cls = EXPLORE_STRATEGIES.get(strategy)
        if not (isinstance(strategy_cls, type) and issubclass(strategy_cls, SearchStrategy)):
            raise ExploreError(
                "search strategy %r does not subclass SearchStrategy" % strategy
            )
        self.strategy = strategy_cls(
            space, self.objectives, self.seed, self.budget, **self.strategy_params
        )

    # ------------------------------------------------------------------
    def run(self) -> ExploreReport:
        """Run strategy rounds until the budget or the strategy is exhausted."""
        evaluations: List[Evaluation] = []
        rounds: List[Dict[str, int]] = []
        while len(evaluations) < self.budget and len(rounds) < self.max_rounds:
            remaining = self.budget - len(evaluations)
            proposals = self.strategy.propose(evaluations, remaining)
            if not proposals:
                break
            batch = self._dedup(proposals, evaluations, remaining)
            if not batch:
                # The strategy only re-proposed evaluated points: it has
                # nothing new to say, so the search is over.
                break
            rounds.append({
                "round": len(rounds),
                "proposed": len(proposals),
                "evaluated": len(batch),
            })
            if self.obs is not None:
                self.obs.emit("explore_round", **rounds[-1])
            self._evaluate(batch, evaluations)
        return self._report(evaluations, rounds)

    # ------------------------------------------------------------------
    def _dedup(
        self,
        proposals: Sequence[Mapping[str, object]],
        evaluations: Sequence[Evaluation],
        remaining: int,
    ) -> List[Dict[str, object]]:
        seen = {self.space.point_key(evaluation.point) for evaluation in evaluations}
        batch: List[Dict[str, object]] = []
        for point in proposals:
            if len(batch) >= remaining:
                break
            key = self.space.point_key(point)
            if key in seen:
                continue
            seen.add(key)
            batch.append(dict(point))
        return batch

    def _evaluate(
        self, batch: Sequence[Mapping[str, object]], evaluations: List[Evaluation]
    ) -> None:
        requests = [self.space.to_request(point) for point in batch]
        report = Campaign(
            requests, cache=self.cache, max_workers=self.max_workers, obs=self.obs
        ).run()
        for point, entry in zip(batch, report.entries):
            if entry.ok:
                values = extract_all(self.objectives, entry.result)
            else:
                values = {objective.name: None for objective in self.objectives}
            evaluations.append(Evaluation(
                index=len(evaluations),
                point=dict(point),
                fingerprint=entry.request.fingerprint(),
                cached=entry.cached,
                error=entry.error,
                objectives=values,
            ))
            if self.obs is not None:
                evaluation = evaluations[-1]
                self.obs.emit(
                    "explore_point",
                    index=evaluation.index,
                    fingerprint=evaluation.fingerprint,
                    point=dict(evaluation.point),
                    objectives=dict(evaluation.objectives),
                    feasible=evaluation.feasible,
                )

    # ------------------------------------------------------------------
    def _report(
        self, evaluations: Sequence[Evaluation], rounds: List[Dict[str, int]]
    ) -> ExploreReport:
        front = ParetoFront(self.objectives)
        for evaluation in evaluations:
            if not evaluation.feasible:
                continue
            front.offer(ParetoEntry(
                index=evaluation.index,
                point=evaluation.point,
                objectives={name: float(value)
                            for name, value in evaluation.objectives.items()},
                fingerprint=evaluation.fingerprint,
            ))
        sensitivity = main_effects(self.space, self.objectives, evaluations)
        feasible = sum(1 for evaluation in evaluations if evaluation.feasible)
        cached = sum(1 for evaluation in evaluations if evaluation.cached)
        failed = sum(1 for evaluation in evaluations if evaluation.error is not None)
        totals = {
            "evaluations": len(evaluations),
            "new_evaluations": len(evaluations) - cached,
            "cached": cached,
            "feasible": feasible,
            "infeasible": len(evaluations) - feasible - failed,
            "failed": failed,
            "space_size": len(self.space),
        }
        return ExploreReport(
            experiment=self.space.experiment,
            strategy=self.strategy_name,
            seed=self.seed,
            budget=self.budget,
            objectives=[objective.to_dict() for objective in self.objectives],
            strategy_params=dict(self.strategy.params),
            space=self.space.to_dict(),
            evaluations=[evaluation.to_dict() for evaluation in evaluations],
            rounds=rounds,
            pareto=[
                {
                    "index": entry.index,
                    "point": dict(entry.point),
                    "objectives": dict(entry.objectives),
                    "fingerprint": entry.fingerprint,
                }
                for entry in front.entries()
            ],
            sensitivity=[row.to_dict() for row in sensitivity],
            totals=totals,
        )
