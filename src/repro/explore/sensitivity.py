"""Main-effect parameter-sensitivity ranking over evaluated points.

After a search, the question "which knob mattered?" is answered with the
classic screening statistic: for each dimension, group the feasible
evaluations by the level they used, average each objective (oriented so
larger is better) within each group, and take the spread between the best
and worst group means.  Normalizing that spread by the objective's overall
observed range puts every (dimension, objective) effect on a common [0, 1]
scale, and the mean across objectives ranks the dimensions.

This is a *main-effects* view — interactions are invisible to it — but it
is exactly what a fractional-factorial screen is designed to estimate, it
needs no model fitting, and it is deterministic for a deterministic
evaluation sequence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.explore.objectives import Objective
from repro.explore.space import SearchSpace


@dataclass(frozen=True)
class SensitivityRow:
    """One dimension's ranked main effect."""

    dimension: str
    #: Mean normalized effect across objectives, in [0, 1].
    effect: float
    #: Normalized effect per objective name, in [0, 1].
    per_objective: Mapping[str, float]
    #: Distinct levels of this dimension observed among feasible evaluations.
    levels_observed: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "dimension": self.dimension,
            "effect": self.effect,
            "per_objective": dict(self.per_objective),
            "levels_observed": self.levels_observed,
        }


def main_effects(
    space: SearchSpace,
    objectives: Sequence[Objective],
    evaluations: Sequence[object],
) -> List[SensitivityRow]:
    """Ranked main effects, strongest dimension first.

    ``evaluations`` are engine evaluation records (objects with ``point``,
    ``objectives`` and ``feasible`` attributes); infeasible ones are
    skipped.  A dimension observed at fewer than two levels gets a zero
    effect (nothing varied, nothing to attribute), as does an objective
    whose observed range is zero.  Ties rank alphabetically.
    """
    feasible = [evaluation for evaluation in evaluations if evaluation.feasible]
    rows: List[SensitivityRow] = []
    spans: Dict[str, float] = {}
    for objective in objectives:
        oriented = [objective.oriented(evaluation.objectives[objective.name])
                    for evaluation in feasible]
        spans[objective.name] = (max(oriented) - min(oriented)) if oriented else 0.0
    for dimension in space.dimensions:
        groups: Dict[str, List[object]] = {}
        for evaluation in feasible:
            level_key = json.dumps(evaluation.point[dimension.name], sort_keys=True)
            groups.setdefault(level_key, []).append(evaluation)
        per_objective: Dict[str, float] = {}
        for objective in objectives:
            span = spans[objective.name]
            if len(groups) < 2 or span <= 0.0:
                per_objective[objective.name] = 0.0
                continue
            means = []
            for members in groups.values():
                oriented = [objective.oriented(member.objectives[objective.name])
                            for member in members]
                means.append(sum(oriented) / len(oriented))
            per_objective[objective.name] = (max(means) - min(means)) / span
        effect = (sum(per_objective.values()) / len(per_objective)
                  if per_objective else 0.0)
        rows.append(SensitivityRow(
            dimension=dimension.name,
            effect=effect,
            per_objective=per_objective,
            levels_observed=len(groups),
        ))
    rows.sort(key=lambda row: (-row.effect, row.dimension))
    return rows
