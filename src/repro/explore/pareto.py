"""Non-dominated (Pareto) front maintenance over multi-objective points.

Dominance is evaluated after orienting every objective so that larger is
better (:meth:`~repro.explore.objectives.Objective.oriented`): entry ``a``
dominates entry ``b`` when it is at least as good on every objective and
strictly better on at least one.  The front keeps every mutually
non-dominated entry — including exact objective ties, which are distinct
design points worth reporting — and returns them ordered by evaluation
index, so front contents (and their serialization) are deterministic for a
deterministic evaluation sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.errors import ExploreError
from repro.explore.objectives import Objective


@dataclass(frozen=True)
class ParetoEntry:
    """One evaluated point with its objective values."""

    index: int  # evaluation order within the exploration
    point: Mapping[str, object]
    objectives: Mapping[str, float]
    fingerprint: str = ""


def dominates(
    a: Mapping[str, float], b: Mapping[str, float], objectives: Sequence[Objective]
) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b``."""
    better_somewhere = False
    for objective in objectives:
        oriented_a = objective.oriented(a[objective.name])
        oriented_b = objective.oriented(b[objective.name])
        if oriented_a < oriented_b:
            return False
        if oriented_a > oriented_b:
            better_somewhere = True
    return better_somewhere


class ParetoFront:
    """The mutually non-dominated subset of everything offered so far."""

    def __init__(self, objectives: Sequence[Objective]) -> None:
        if not objectives:
            raise ExploreError("a Pareto front needs at least one objective")
        self.objectives = tuple(objectives)
        self._entries: List[ParetoEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def offer(self, entry: ParetoEntry) -> bool:
        """Add an entry unless dominated; evict entries it dominates.

        Returns True when the entry joined the front.
        """
        for name in (objective.name for objective in self.objectives):
            if name not in entry.objectives:
                raise ExploreError(
                    "Pareto entry %d lacks objective %r" % (entry.index, name)
                )
        for existing in self._entries:
            if dominates(existing.objectives, entry.objectives, self.objectives):
                return False
        self._entries = [
            existing for existing in self._entries
            if not dominates(entry.objectives, existing.objectives, self.objectives)
        ]
        self._entries.append(entry)
        return True

    def entries(self) -> List[ParetoEntry]:
        """Front members ordered by evaluation index (deterministic)."""
        return sorted(self._entries, key=lambda entry: entry.index)

    def weakly_dominates(self, other: "ParetoFront") -> bool:
        """Whether every entry of ``other`` is matched-or-beaten here.

        True when, for each of ``other``'s entries, some entry of this front
        is at least as good on every objective (equality included).  This is
        the comparison the strategy-vs-strategy acceptance check uses: a
        refinement strategy must never end with a front a plain screening
        strategy beats anywhere.
        """
        for theirs in other.entries():
            matched = False
            for ours in self.entries():
                if all(
                    objective.oriented(ours.objectives[objective.name])
                    >= objective.oriented(theirs.objectives[objective.name])
                    for objective in self.objectives
                ):
                    matched = True
                    break
            if not matched:
                return False
        return True

    def to_dict(self) -> Dict[str, object]:
        return {
            "objectives": [objective.to_dict() for objective in self.objectives],
            "entries": [
                {
                    "index": entry.index,
                    "point": dict(entry.point),
                    "objectives": dict(entry.objectives),
                    "fingerprint": entry.fingerprint,
                }
                for entry in self.entries()
            ],
        }
