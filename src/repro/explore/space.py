"""The searchable design space: dimensions derived from experiment parameters.

A :class:`SearchSpace` names the axes an exploration may vary — each a
:class:`SearchDimension` over one declared parameter of the target
experiment — plus the fixed overrides applied to every evaluated point.
Every dimension is a finite, ordered list of *levels*:

* **categorical** dimensions enumerate registry names (NI designs,
  topologies, arrival processes, ...) or explicit value lists;
* **numeric** dimensions quantize a ``low:high`` range into ``steps``
  evenly spaced levels (ints are rounded and deduplicated).

Finiteness is what makes exploration deterministic and cache-friendly: a
point is a mapping of dimension names to levels, identified by a canonical
JSON key, so strategies can deduplicate proposals, enumerate the whole
space in a stable lexicographic order, and map points onto the unit
hypercube for surrogate modelling — all without floating-point drift.

Spaces compile points into :class:`~repro.campaign.request.RunRequest`
objects (fixed overrides merged under the point's values), so evaluation
inherits the campaign layer's content-hash caching and parallel execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.request import RunRequest
from repro.errors import ExploreError
from repro.experiments.registry import get_spec

#: Dimension names searched when the caller gives none: the categorical
#: registry axes shared by the scenario-driven experiments.
DEFAULT_DIMENSIONS = ("design", "topology", "arrivals")


@dataclass(frozen=True)
class SearchDimension:
    """One finite, ordered axis of the search space."""

    name: str
    kind: str  # "categorical" | "int" | "float"
    levels: Tuple[object, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("categorical", "int", "float"):
            raise ExploreError(
                "dimension %r has unsupported kind %r (expected categorical, "
                "int or float)" % (self.name, self.kind)
            )
        if len(self.levels) < 2:
            raise ExploreError(
                "dimension %r needs at least two levels to search, got %r"
                % (self.name, list(self.levels))
            )

    def __len__(self) -> int:
        return len(self.levels)

    def unit(self, index: int) -> float:
        """The level index mapped onto [0, 1] (for surrogate features)."""
        return index / (len(self.levels) - 1)

    def clamp(self, index: int) -> int:
        return max(0, min(len(self.levels) - 1, index))

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind, "levels": list(self.levels)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SearchDimension":
        try:
            return cls(
                name=str(payload["name"]),
                kind=str(payload["kind"]),
                levels=tuple(payload["levels"]),
            )
        except (KeyError, TypeError) as exc:
            raise ExploreError("malformed search-dimension document: %s" % exc) from None


def _numeric_levels(kind: type, low: float, high: float, steps: int) -> Tuple[object, ...]:
    """``steps`` evenly spaced levels over [low, high] (ints rounded, deduped)."""
    if steps < 2:
        raise ExploreError("numeric dimension needs at least 2 steps, got %d" % steps)
    if not high > low:
        raise ExploreError(
            "numeric dimension range must satisfy low < high, got %g:%g" % (low, high)
        )
    raw = [low + (high - low) * i / (steps - 1) for i in range(steps)]
    if kind is int:
        seen: List[object] = []
        for value in raw:
            rounded = int(round(value))
            if rounded not in seen:
                seen.append(rounded)
        return tuple(seen)
    return tuple(round(value, 10) for value in raw)


@dataclass(frozen=True)
class SearchSpace:
    """The searched experiment, its dimensions and the fixed overrides."""

    experiment: str
    dimensions: Tuple[SearchDimension, ...]
    fixed: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ExploreError("search space needs at least one dimension")
        spec = get_spec(self.experiment)
        seen = set()
        for dimension in self.dimensions:
            if dimension.name in seen:
                raise ExploreError(
                    "search space declares dimension %r twice" % dimension.name
                )
            seen.add(dimension.name)
            parameter = spec.parameter(dimension.name)  # raises on unknown names
            for level in dimension.levels:
                parameter.validate(level)
            if dimension.name in self.fixed:
                raise ExploreError(
                    "parameter %r is both a search dimension and a fixed override"
                    % dimension.name
                )
        object.__setattr__(self, "fixed", dict(self.fixed))
        spec.resolve(self.fixed)  # validate the fixed overrides too

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total number of distinct points."""
        total = 1
        for dimension in self.dimensions:
            total *= len(dimension)
        return total

    def dimension(self, name: str) -> SearchDimension:
        for dimension in self.dimensions:
            if dimension.name == name:
                return dimension
        raise ExploreError(
            "search space has no dimension %r (declared: %s)"
            % (name, ", ".join(d.name for d in self.dimensions))
        )

    def point(self, indices: Sequence[int]) -> Dict[str, object]:
        """The point at the given per-dimension level indices."""
        if len(indices) != len(self.dimensions):
            raise ExploreError(
                "expected %d level indices, got %d" % (len(self.dimensions), len(indices))
            )
        return {
            dimension.name: dimension.levels[dimension.clamp(index)]
            for dimension, index in zip(self.dimensions, indices)
        }

    def indices(self, point: Mapping[str, object]) -> Tuple[int, ...]:
        """The per-dimension level indices of an in-space point."""
        result = []
        for dimension in self.dimensions:
            try:
                result.append(dimension.levels.index(point[dimension.name]))
            except (KeyError, ValueError):
                raise ExploreError(
                    "point %r is not on dimension %r's levels %r"
                    % (dict(point), dimension.name, list(dimension.levels))
                ) from None
        return tuple(result)

    def unit_coordinates(self, point: Mapping[str, object]) -> List[float]:
        """The point mapped onto the unit hypercube (surrogate features)."""
        return [
            dimension.unit(index)
            for dimension, index in zip(self.dimensions, self.indices(point))
        ]

    def enumerate_indices(self) -> Iterator[Tuple[int, ...]]:
        """Every index tuple in lexicographic (deterministic) order."""
        counts = [len(dimension) for dimension in self.dimensions]
        current = [0] * len(counts)
        while True:
            yield tuple(current)
            position = len(counts) - 1
            while position >= 0:
                current[position] += 1
                if current[position] < counts[position]:
                    break
                current[position] = 0
                position -= 1
            if position < 0:
                return

    # ------------------------------------------------------------------
    # Identity / compilation
    # ------------------------------------------------------------------
    @staticmethod
    def point_key(point: Mapping[str, object]) -> str:
        """Canonical JSON identity of a point (dedup / history keys)."""
        return json.dumps(dict(point), sort_keys=True, separators=(",", ":"))

    def to_request(self, point: Mapping[str, object]) -> RunRequest:
        """Compile a point into a cacheable campaign run request."""
        params = dict(self.fixed)
        params.update(point)
        return RunRequest(self.experiment, params)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "dimensions": [dimension.to_dict() for dimension in self.dimensions],
            "fixed": dict(self.fixed),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SearchSpace":
        try:
            return cls(
                experiment=str(payload["experiment"]),
                dimensions=tuple(
                    SearchDimension.from_dict(item) for item in payload["dimensions"]
                ),
                fixed=dict(payload.get("fixed", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ExploreError("malformed search-space document: %s" % exc) from None

    def describe(self) -> str:
        """One line per dimension, e.g. ``design: categorical {edge, split}``."""
        lines = []
        for dimension in self.dimensions:
            lines.append("%s: %s {%s}" % (
                dimension.name, dimension.kind,
                ", ".join(str(level) for level in dimension.levels),
            ))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI dimension parsing
# ----------------------------------------------------------------------
def parse_dimension(experiment: str, assignment: str) -> SearchDimension:
    """Parse one ``--dim`` assignment into a dimension.

    Two spec forms, both validated against the experiment's declared
    parameter:

    * ``name=v1,v2,...`` — explicit (categorical) levels, parsed with the
      parameter's own scalar parser;
    * ``name=lo:hi[:steps]`` — a quantized numeric range (default 5 steps),
      only legal for int/float parameters.
    """
    name, separator, text = assignment.partition("=")
    if not separator or not name or not text:
        raise ExploreError("malformed --dim %r (expected name=v1,v2,... or name=lo:hi[:steps])"
                           % assignment)
    spec = get_spec(experiment)
    parameter = spec.parameter(name)
    if "," not in text and ":" in text and not parameter.repeated \
            and parameter.kind in (int, float):
        parts = text.split(":")
        if len(parts) not in (2, 3):
            raise ExploreError(
                "malformed numeric --dim %r (expected name=lo:hi[:steps])" % assignment
            )
        try:
            low, high = float(parts[0]), float(parts[1])
            steps = int(parts[2]) if len(parts) == 3 else 5
        except ValueError:
            raise ExploreError(
                "malformed numeric --dim %r (expected name=lo:hi[:steps])" % assignment
            ) from None
        kind = "int" if parameter.kind is int else "float"
        return SearchDimension(name, kind, _numeric_levels(parameter.kind, low, high, steps))
    # Explicit level lists; ":" joins the values of one repeated-parameter
    # level (the sweep CLI's convention), e.g. ``loads=2:5,5:20``.
    parsed = (parameter.parse(item, list_separator=":")
              for item in text.split(",") if item != "")
    levels = tuple(list(value) if isinstance(value, tuple) else value for value in parsed)
    kind = "categorical" if parameter.repeated else \
        {int: "int", float: "float"}.get(parameter.kind, "categorical")
    return SearchDimension(name, kind, levels)


def default_dimensions(experiment: str) -> Tuple[SearchDimension, ...]:
    """The registry-backed categorical axes the experiment declares.

    Walks :data:`DEFAULT_DIMENSIONS` and keeps every name the experiment
    declares as a choice-constrained parameter with at least two legal
    values — for ``load_sweep``/``chaos_sweep`` that is NI design x chip
    topology x arrival process, the paper's hand-enumerated sweep axes.
    """
    spec = get_spec(experiment)
    declared = {parameter.name: parameter for parameter in spec.parameters}
    dimensions = []
    for name in DEFAULT_DIMENSIONS:
        parameter = declared.get(name)
        if parameter is None:
            continue
        choices = parameter.choice_values()
        if choices is None or len(choices) < 2:
            continue
        dimensions.append(SearchDimension(name, "categorical", tuple(choices)))
    if not dimensions:
        raise ExploreError(
            "experiment %r declares none of the default search dimensions (%s); "
            "give explicit --dim axes" % (experiment, ", ".join(DEFAULT_DIMENSIONS))
        )
    return tuple(dimensions)


def build_space(
    experiment: str,
    dim_assignments: Sequence[str] = (),
    fixed: Optional[Mapping[str, object]] = None,
) -> SearchSpace:
    """Build a space from CLI-style ``--dim`` assignments (defaults when empty)."""
    if dim_assignments:
        dimensions = tuple(parse_dimension(experiment, item) for item in dim_assignments)
    else:
        dimensions = default_dimensions(experiment)
    return SearchSpace(experiment=experiment, dimensions=dimensions, fixed=fixed or {})
