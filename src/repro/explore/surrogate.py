"""A cheap quadratic response-surface surrogate for candidate ranking.

The evolutionary strategy proposes more candidates than its per-generation
evaluation budget and uses this model — ridge-regularized least squares on
quadratic features of the unit-hypercube coordinates — to decide which
candidates are worth a real simulation.  The feature vector for a point
``x`` of dimension ``d`` is::

    [1, x_1..x_d, x_1^2..x_d^2, x_i*x_j (i<j)]

which is ``1 + 2d + d(d-1)/2`` terms: small enough (20 terms at d=5) that
the normal equations solve exactly in pure Python with Gaussian
elimination, with no numeric dependencies and bit-stable results.  The
ridge term keeps the system non-singular when the evaluated history is
smaller than the feature count (always true early in a search).

This is a *ranking* model, not a predictor of record: its only job is to
order candidate points by expected scalarized objective, and mispredictions
cost one simulation, never correctness — every reported number comes from a
real evaluated run.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ExploreError


def quadratic_features(coordinates: Sequence[float]) -> List[float]:
    """The quadratic feature vector of one unit-hypercube point."""
    features = [1.0]
    features.extend(float(value) for value in coordinates)
    features.extend(float(value) * float(value) for value in coordinates)
    for i in range(len(coordinates)):
        for j in range(i + 1, len(coordinates)):
            features.append(float(coordinates[i]) * float(coordinates[j]))
    return features


def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting (in place, deterministic)."""
    size = len(matrix)
    for column in range(size):
        pivot_row = column
        pivot_value = abs(matrix[column][column])
        for row in range(column + 1, size):
            if abs(matrix[row][column]) > pivot_value:
                pivot_row, pivot_value = row, abs(matrix[row][column])
        if pivot_value == 0.0:
            raise ExploreError("surrogate normal equations are singular")
        if pivot_row != column:
            matrix[column], matrix[pivot_row] = matrix[pivot_row], matrix[column]
            rhs[column], rhs[pivot_row] = rhs[pivot_row], rhs[column]
        pivot = matrix[column][column]
        for row in range(column + 1, size):
            factor = matrix[row][column] / pivot
            if factor == 0.0:
                continue
            for k in range(column, size):
                matrix[row][k] -= factor * matrix[column][k]
            rhs[row] -= factor * rhs[column]
    solution = [0.0] * size
    for row in range(size - 1, -1, -1):
        accumulated = rhs[row]
        for k in range(row + 1, size):
            accumulated -= matrix[row][k] * solution[k]
        solution[row] = accumulated / matrix[row][row]
    return solution


class QuadraticSurrogate:
    """Ridge-regularized quadratic regression over unit coordinates."""

    def __init__(self, ridge: float = 1e-6) -> None:
        if ridge <= 0.0:
            raise ExploreError("surrogate ridge must be positive")
        self.ridge = ridge
        self._weights: List[float] = []

    @property
    def fitted(self) -> bool:
        return bool(self._weights)

    def fit(self, points: Sequence[Sequence[float]], targets: Sequence[float]) -> None:
        """Fit weights to (unit-coordinate, target) observations."""
        if len(points) != len(targets):
            raise ExploreError(
                "surrogate fit needs matched points/targets, got %d/%d"
                % (len(points), len(targets))
            )
        if not points:
            raise ExploreError("surrogate fit needs at least one observation")
        design = [quadratic_features(point) for point in points]
        width = len(design[0])
        # Normal equations A^T A + ridge*I (the intercept is not penalized).
        gram = [[0.0] * width for _ in range(width)]
        moment = [0.0] * width
        for row, target in zip(design, targets):
            for i in range(width):
                row_i = row[i]
                if row_i == 0.0:
                    continue
                moment[i] += row_i * target
                gram_i = gram[i]
                for j in range(width):
                    gram_i[j] += row_i * row[j]
        for i in range(1, width):
            gram[i][i] += self.ridge
        self._weights = _solve(gram, moment)

    def predict(self, coordinates: Sequence[float]) -> float:
        """Predicted target at one unit-hypercube point."""
        if not self._weights:
            raise ExploreError("surrogate is not fitted")
        features = quadratic_features(coordinates)
        return sum(weight * feature for weight, feature in zip(self._weights, features))
