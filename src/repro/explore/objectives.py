"""Objectives: scalar figures of merit extracted from experiment results.

Each :class:`Objective` names one axis of the Pareto comparison — its
optimization sense, unit and an extractor that reads the value out of an
:class:`~repro.experiments.base.ExperimentResult`.  The built-ins cover the
ROADMAP's (saturation throughput, p99, cost) triple plus the resilience
follow-up:

* ``saturation`` — SLO-saturation throughput in req/kcycle (maximize),
  parsed from the ``load_sweep`` saturation note (or ``chaos_sweep``'s
  fault-free baseline digest);
* ``p99`` — the p99 latency in ns at the lowest measured load (minimize),
  the unloaded tail;
* ``cost`` — simulated events per run (minimize), the discrete-event proxy
  for how much machine the scenario spends producing its throughput;
* ``degraded_saturation`` — the worst SLO-preserving degraded throughput
  across injected fault intensities (maximize), via
  :func:`repro.faults.metrics.worst_degraded_saturation` — chaos points as
  a searchable objective, not just a swept one.

Extractors return ``None`` when a result does not carry the metric at all
(e.g. asking ``degraded_saturation`` of a fault-free experiment); the
engine records such evaluations as infeasible and keeps them off the
Pareto front.  All extracted values are deterministic functions of the
simulation (never wall-clock rates), so explore reports stay byte-identical
across repeat runs and worker counts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExploreError
from repro.experiments.base import ExperimentResult
from repro.faults.metrics import worst_degraded_saturation

#: Matches the ``load_sweep`` saturation note (and ``chaos_sweep``'s
#: fault-free twin, which prefixes it with ``resilience baseline:``).
_SATURATION_NOTE = re.compile(
    r"(?:saturation throughput|fault-free saturation)(?::)? "
    r"(?P<throughput>[0-9.]+) req/kcycle"
)
_SATURATION_NOT_MET = re.compile(r"saturation throughput: not met")


@dataclass(frozen=True)
class Objective:
    """One named, sensed figure of merit."""

    name: str
    sense: str  # "max" | "min"
    unit: str
    description: str
    extractor: Callable[[ExperimentResult], Optional[float]]

    def __post_init__(self) -> None:
        if self.sense not in ("max", "min"):
            raise ExploreError(
                "objective %r has unsupported sense %r (expected max or min)"
                % (self.name, self.sense)
            )

    def extract(self, result: ExperimentResult) -> Optional[float]:
        """The objective's value for one result (None = not measurable)."""
        return self.extractor(result)

    def oriented(self, value: float) -> float:
        """The value mapped so that larger is always better."""
        return value if self.sense == "max" else -value

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "sense": self.sense, "unit": self.unit,
                "description": self.description}


# ----------------------------------------------------------------------
# Built-in extractors
# ----------------------------------------------------------------------
def _extract_saturation(result: ExperimentResult) -> Optional[float]:
    for note in result.notes:
        match = _SATURATION_NOTE.search(note)
        if match is not None:
            return float(match.group("throughput"))
        if _SATURATION_NOT_MET.search(note) is not None:
            return 0.0
    return None


def _extract_p99(result: ExperimentResult) -> Optional[float]:
    if "p99 (ns)" not in result.headers:
        return None
    values = [value for value in result.column("p99 (ns)")
              if isinstance(value, (int, float))]
    if not values:
        return None
    # Rows walk the load ladder in ascending offered load, so the first row
    # is the lowest measured load: the unloaded tail.
    return float(values[0])


def _extract_cost(result: ExperimentResult) -> Optional[float]:
    events = result.metadata.perf.get("events", 0.0)
    if events > 0:
        return float(events)
    return None


def _extract_degraded_saturation(result: ExperimentResult) -> Optional[float]:
    return worst_degraded_saturation(result.notes)


#: The built-in objectives, keyed by name.
OBJECTIVES: Dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective(
            name="saturation",
            sense="max",
            unit="req/kcycle",
            description="SLO-saturation throughput (load_sweep note; "
                        "0.0 when no measured load met the SLO)",
            extractor=_extract_saturation,
        ),
        Objective(
            name="p99",
            sense="min",
            unit="ns",
            description="p99 latency at the lowest measured load (unloaded tail)",
            extractor=_extract_p99,
        ),
        Objective(
            name="cost",
            sense="min",
            unit="events",
            description="simulated discrete events per run (machine-cost proxy)",
            extractor=_extract_cost,
        ),
        Objective(
            name="degraded_saturation",
            sense="max",
            unit="req/kcycle",
            description="worst SLO-preserving degraded throughput across "
                        "injected fault intensities (chaos_sweep)",
            extractor=_extract_degraded_saturation,
        ),
    )
}


def resolve_objectives(names: Sequence[str]) -> Tuple[Objective, ...]:
    """Look up objectives by name (order-preserving, duplicates rejected)."""
    if not names:
        raise ExploreError("exploration needs at least one objective")
    resolved: List[Objective] = []
    seen = set()
    for name in names:
        if name in seen:
            raise ExploreError("objective %r given twice" % name)
        seen.add(name)
        try:
            resolved.append(OBJECTIVES[name])
        except KeyError:
            raise ExploreError(
                "unknown objective %r (available: %s)"
                % (name, ", ".join(sorted(OBJECTIVES)))
            ) from None
    return tuple(resolved)


def extract_all(
    objectives: Sequence[Objective], result: ExperimentResult
) -> Dict[str, Optional[float]]:
    """Every objective's value for one result, keyed by objective name."""
    return {objective.name: objective.extract(result) for objective in objectives}
