"""The built-in search strategies (the ``EXPLORE_STRATEGIES`` registry).

A strategy decides *which point to evaluate next*; everything else —
compiling points to run requests, caching, parallel execution, Pareto and
sensitivity bookkeeping — belongs to the engine.  Strategies register
through :func:`repro.scenario.registry.register_strategy`, the same
decorator pattern as the other six component axes, so new optimizers plug
in without touching the engine or the CLI::

    from repro.scenario.registry import register_strategy

    @register_strategy("anneal")
    class AnnealStrategy(SearchStrategy):
        ...

The engine drives the conversation in rounds: ``propose(evaluations,
remaining)`` receives the full evaluation history (in evaluation order) and
the unspent budget, and returns the next batch of points — an empty batch
ends the search.  Every built-in draws randomness only from one
``random.Random`` seeded per (exploration seed, strategy name), and breaks
every ranking tie deterministically, so a fixed seed reproduces the exact
evaluation sequence regardless of worker count.
"""

from __future__ import annotations

import itertools
import random
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ExploreError
from repro.explore.objectives import Objective
from repro.explore.pareto import ParetoEntry, ParetoFront
from repro.explore.space import SearchSpace
from repro.explore.surrogate import QuadraticSurrogate
from repro.scenario.registry import register_strategy


def strategy_seed(seed: int, name: str) -> int:
    """A per-strategy RNG seed derived from the exploration seed.

    Mixing the strategy name in (via crc32 — stable across processes and
    ``PYTHONHASHSEED``) keeps two strategies run at the same seed from
    consuming identical random streams.
    """
    return (int(seed) * 1000003 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF


class SearchStrategy:
    """Base class for search strategies.

    Subclasses set :attr:`param_defaults` (their tunables, surfaced by the
    CLI catalog like workload/arrival/fault parameters) and implement
    :meth:`propose`.  The base validates and coerces the overrides and owns
    the seeded RNG.
    """

    #: Tunable parameters and their defaults (JSON-native scalars).
    param_defaults: Mapping[str, object] = {}

    def __init__(
        self,
        space: SearchSpace,
        objectives: Sequence[Objective],
        seed: int,
        budget: int,
        **params: object,
    ) -> None:
        if budget < 1:
            raise ExploreError("exploration budget must be >= 1, got %d" % budget)
        self.space = space
        self.objectives = tuple(objectives)
        self.seed = int(seed)
        self.budget = int(budget)
        self.params = self._resolve_params(params)
        self.rng = random.Random(strategy_seed(self.seed, type(self).__name__))

    def _resolve_params(self, overrides: Mapping[str, object]) -> Dict[str, object]:
        params = dict(self.param_defaults)
        for name, value in overrides.items():
            if name not in params:
                raise ExploreError(
                    "strategy %s has no parameter %r (declared: %s)"
                    % (type(self).__name__, name,
                       ", ".join(sorted(self.param_defaults)) or "none")
                )
            default = params[name]
            if isinstance(default, float) and isinstance(value, int) \
                    and not isinstance(value, bool):
                value = float(value)
            if not isinstance(value, type(default)):
                raise ExploreError(
                    "strategy parameter %r expects a %s value, got %r"
                    % (name, type(default).__name__, value)
                )
            params[name] = value
        return params

    # ------------------------------------------------------------------
    # The engine-facing protocol
    # ------------------------------------------------------------------
    def propose(self, evaluations: Sequence[object], remaining: int) -> List[Dict[str, object]]:
        """The next batch of points to evaluate ([] ends the search).

        ``evaluations`` is the full history so far (objects with ``point``,
        ``objectives`` and ``feasible`` attributes, in evaluation order);
        ``remaining`` is the unspent evaluation budget.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def evaluated_keys(self, evaluations: Sequence[object]) -> Set[str]:
        return {self.space.point_key(evaluation.point) for evaluation in evaluations}

    def unexplored(self, evaluations: Sequence[object], count: int) -> List[Dict[str, object]]:
        """Up to ``count`` unevaluated points in stable enumeration order."""
        seen = self.evaluated_keys(evaluations)
        batch: List[Dict[str, object]] = []
        for indices in self.space.enumerate_indices():
            if len(batch) >= count:
                break
            point = self.space.point(indices)
            key = self.space.point_key(point)
            if key not in seen:
                seen.add(key)
                batch.append(point)
        return batch

    def scalarize(self, evaluations: Sequence[object]) -> List[Tuple[object, float]]:
        """Feasible evaluations scored on [0, 1] (mean of normalized objectives).

        Each objective is oriented (larger = better) and min-max normalized
        over the feasible history; the score is the mean across objectives.
        Deterministic given the evaluation order.
        """
        feasible = [evaluation for evaluation in evaluations if evaluation.feasible]
        if not feasible:
            return []
        spans: Dict[str, Tuple[float, float]] = {}
        for objective in self.objectives:
            oriented = [objective.oriented(evaluation.objectives[objective.name])
                        for evaluation in feasible]
            spans[objective.name] = (min(oriented), max(oriented))
        scored = []
        for evaluation in feasible:
            total = 0.0
            for objective in self.objectives:
                low, high = spans[objective.name]
                oriented = objective.oriented(evaluation.objectives[objective.name])
                total += (oriented - low) / (high - low) if high > low else 0.5
            scored.append((evaluation, total / len(self.objectives)))
        return scored


# ----------------------------------------------------------------------
# Deterministic sampling helpers
# ----------------------------------------------------------------------
def fractional_factorial(
    space: SearchSpace, budget: int, screen_levels: int = 3
) -> List[Dict[str, object]]:
    """A deterministic fractional-factorial screening plan.

    Categorical dimensions contribute every level; numeric dimensions are
    thinned to ``screen_levels`` evenly spaced levels (low/centre/high by
    default).  When the resulting factorial still exceeds the budget, an
    evenly strided subset of its lexicographic enumeration is kept — the
    classic screening fraction: coverage spread across the whole design,
    cost capped at ``budget`` runs.
    """
    if screen_levels < 2:
        raise ExploreError("screening needs at least 2 levels per dimension")
    axes: List[List[int]] = []
    for dimension in space.dimensions:
        if dimension.kind == "categorical" or len(dimension) <= screen_levels:
            axes.append(list(range(len(dimension))))
        else:
            picked = sorted({
                round(i * (len(dimension) - 1) / (screen_levels - 1))
                for i in range(screen_levels)
            })
            axes.append(picked)
    factorial = list(itertools.product(*axes))
    if len(factorial) > budget:
        if budget == 1:
            positions = [0]
        else:
            positions = sorted({
                round(i * (len(factorial) - 1) / (budget - 1)) for i in range(budget)
            })
        factorial = [factorial[position] for position in positions]
    return [space.point(indices) for indices in factorial]


def latin_hypercube(
    space: SearchSpace, count: int, rng: random.Random
) -> List[Dict[str, object]]:
    """A seeded Latin-hypercube sample of ``count`` points.

    Each dimension's ``count`` strata are permuted independently and a
    uniform draw inside each stratum snaps to the nearest level, so every
    dimension's levels are covered as evenly as ``count`` allows.  Distinct
    points are not guaranteed (finite levels may collide); callers dedup.
    """
    if count < 1:
        return []
    columns: List[List[int]] = []
    for dimension in space.dimensions:
        permutation = list(range(count))
        rng.shuffle(permutation)
        column = []
        for stratum in permutation:
            draw = (stratum + rng.random()) / count
            column.append(min(len(dimension) - 1, int(draw * len(dimension))))
        columns.append(column)
    return [
        space.point(tuple(column[row] for column in columns))
        for row in range(count)
    ]


# ----------------------------------------------------------------------
# grid_screen — fractional-factorial screening
# ----------------------------------------------------------------------
@register_strategy("grid_screen")
class GridScreenStrategy(SearchStrategy):
    """One-shot fractional-factorial screening of the whole space.

    The classic first pass of a DAVOS-style DSE: every categorical level
    and ``screen_levels`` quantiles of each numeric range, thinned by even
    striding to the evaluation budget.  No adaptivity — the plan depends
    only on the space and the budget, which makes it the reproducible
    baseline other strategies are judged against.
    """

    param_defaults: Mapping[str, object] = {"screen_levels": 3}

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self._done = False

    def propose(self, evaluations: Sequence[object], remaining: int) -> List[Dict[str, object]]:
        if self._done or remaining < 1:
            return []
        self._done = True
        plan = fractional_factorial(
            self.space, min(self.budget, remaining),
            screen_levels=int(self.params["screen_levels"]),
        )
        seen = self.evaluated_keys(evaluations)
        return [point for point in plan if self.space.point_key(point) not in seen]


# ----------------------------------------------------------------------
# random — seeded Latin-hypercube sampling
# ----------------------------------------------------------------------
@register_strategy("random")
class RandomStrategy(SearchStrategy):
    """Seeded Latin-hypercube sampling until the budget is spent.

    Each round draws a stratified sample the size of the unspent budget;
    collisions with already-evaluated points are simply dropped (the next
    round re-covers them), and when the sampler stops finding new points —
    small spaces exhaust quickly — the round is topped up from the stable
    enumeration order so the budget is never silently wasted.
    """

    param_defaults: Mapping[str, object] = {"max_rounds": 8}

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self._rounds = 0

    def propose(self, evaluations: Sequence[object], remaining: int) -> List[Dict[str, object]]:
        if remaining < 1 or self._rounds >= int(self.params["max_rounds"]):
            return []
        self._rounds += 1
        seen = self.evaluated_keys(evaluations)
        batch: List[Dict[str, object]] = []
        for point in latin_hypercube(self.space, remaining, self.rng):
            key = self.space.point_key(point)
            if key not in seen:
                seen.add(key)
                batch.append(point)
        if not batch:
            # Sampler collided everywhere: the space is (nearly) exhausted.
            batch = self.unexplored(evaluations, remaining)
        return batch


# ----------------------------------------------------------------------
# evolve — screening + surrogate-ranked evolutionary refinement
# ----------------------------------------------------------------------
@register_strategy("evolve")
class EvolveStrategy(SearchStrategy):
    """Factorial screening, then surrogate-ranked evolutionary refinement.

    Round zero spends ``screen_fraction`` of the budget on the same
    fractional-factorial plan as ``grid_screen`` (main effects need global
    coverage before refinement makes sense).  Every later round breeds a
    candidate pool — crossover between Pareto-optimal/high-scalarized
    parents plus per-dimension mutation — ``pool`` times larger than the
    points it may actually evaluate, ranks the pool with a cheap quadratic
    surrogate fitted to the full evaluated history, and submits only the
    predicted-best.  When breeding stops producing unseen points the round
    is topped up from the stable enumeration order, so on small spaces the
    strategy degrades gracefully to exhaustive coverage.
    """

    param_defaults: Mapping[str, object] = {
        "screen_fraction": 0.5,
        "generation": 4,
        "mutation": 0.3,
        "pool": 4,
        "screen_levels": 3,
        "ridge": 1e-6,
    }

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self._screened = False

    def propose(self, evaluations: Sequence[object], remaining: int) -> List[Dict[str, object]]:
        if remaining < 1:
            return []
        if not self._screened:
            self._screened = True
            fraction = float(self.params["screen_fraction"])
            screen_budget = max(2, int(round(self.budget * fraction)))
            screen_budget = min(screen_budget, remaining)
            plan = fractional_factorial(
                self.space, screen_budget,
                screen_levels=int(self.params["screen_levels"]),
            )
            seen = self.evaluated_keys(evaluations)
            batch = [point for point in plan if self.space.point_key(point) not in seen]
            if batch:
                return batch
            # Everything the screen wanted is already evaluated (warm
            # restart): fall through to refinement immediately.
        generation = min(int(self.params["generation"]), remaining)
        seen = self.evaluated_keys(evaluations)
        candidates = self._breed(evaluations, generation * int(self.params["pool"]), seen)
        ranked = self._rank(evaluations, candidates)
        batch = ranked[:generation]
        if len(batch) < generation:
            have = {self.space.point_key(point) for point in batch}
            for point in self.unexplored(evaluations, generation - len(batch)):
                if self.space.point_key(point) not in have:
                    batch.append(point)
        return batch

    # ------------------------------------------------------------------
    def _parents(self, evaluations: Sequence[object]) -> List[Mapping[str, object]]:
        """Breeding pool: the current Pareto set plus top scalarized points."""
        scored = self.scalarize(evaluations)
        if not scored:
            return []
        front = ParetoFront(self.objectives)
        for rank, (evaluation, _score) in enumerate(scored):
            front.offer(ParetoEntry(
                index=rank, point=evaluation.point, objectives=evaluation.objectives,
            ))
        parents = [entry.point for entry in front.entries()]
        have = {self.space.point_key(point) for point in parents}
        # Stable sort: score descending, then evaluation order for ties.
        by_score = sorted(
            enumerate(scored), key=lambda item: (-item[1][1], item[0])
        )
        for _position, (evaluation, _score) in by_score:
            if len(parents) >= max(4, len(front)):
                break
            key = self.space.point_key(evaluation.point)
            if key not in have:
                have.add(key)
                parents.append(evaluation.point)
        return parents

    def _breed(
        self,
        evaluations: Sequence[object],
        count: int,
        seen: Set[str],
    ) -> List[Dict[str, object]]:
        """Crossover + mutation proposals, deduplicated, unseen only."""
        parents = self._parents(evaluations)
        if len(parents) < 2:
            return [
                point for point in latin_hypercube(self.space, count, self.rng)
                if self.space.point_key(point) not in seen
            ]
        parent_indices = [self.space.indices(parent) for parent in parents]
        mutation = float(self.params["mutation"])
        produced: List[Dict[str, object]] = []
        produced_keys: Set[str] = set()
        for _attempt in range(count * 4):
            if len(produced) >= count:
                break
            mother = parent_indices[self.rng.randrange(len(parent_indices))]
            father = parent_indices[self.rng.randrange(len(parent_indices))]
            child = [
                mother[axis] if self.rng.random() < 0.5 else father[axis]
                for axis in range(len(self.space.dimensions))
            ]
            for axis, dimension in enumerate(self.space.dimensions):
                if self.rng.random() >= mutation:
                    continue
                if dimension.kind == "categorical":
                    child[axis] = self.rng.randrange(len(dimension))
                else:
                    # Numeric levels are ordered: mutate by a local step.
                    child[axis] = dimension.clamp(
                        child[axis] + self.rng.choice((-2, -1, 1, 2))
                    )
            point = self.space.point(tuple(child))
            key = self.space.point_key(point)
            if key in seen or key in produced_keys:
                continue
            produced_keys.add(key)
            produced.append(point)
        return produced

    def _rank(
        self,
        evaluations: Sequence[object],
        candidates: List[Dict[str, object]],
    ) -> List[Dict[str, object]]:
        """Candidates ordered best-predicted-first (ties by point key)."""
        scored = self.scalarize(evaluations)
        if len(scored) < 2 or len(candidates) < 2:
            return sorted(candidates, key=self.space.point_key)
        surrogate = QuadraticSurrogate(ridge=float(self.params["ridge"]))
        surrogate.fit(
            [self.space.unit_coordinates(evaluation.point) for evaluation, _ in scored],
            [score for _, score in scored],
        )
        predicted = [
            (-surrogate.predict(self.space.unit_coordinates(point)),
             self.space.point_key(point), point)
            for point in candidates
        ]
        predicted.sort(key=lambda item: (item[0], item[1]))
        return [point for _neg, _key, point in predicted]
