"""repro — a reproduction of "Manycore Network Interfaces for In-Memory
Rack-Scale Computing" (Daglis et al., ISCA 2015).

The package provides a message-level simulator of a 64-core rack-scale SoC
with the three NI designs studied in the paper (NIedge, NIper-tile, NIsplit),
an idealized hardware-NUMA baseline, the analytical latency/bandwidth models
behind the paper's tables and projections, the microbenchmarks of §5 and an
experiment harness that regenerates every table and figure of the evaluation.

Quick start::

    from repro import SystemConfig, NIDesign
    from repro.workloads import RemoteReadLatencyBenchmark

    config = SystemConfig.paper_defaults().with_design(NIDesign.SPLIT)
    bench = RemoteReadLatencyBenchmark(config, iterations=5)
    result = bench.run(transfer_bytes=64)
    print(result.mean_ns, "ns")
"""

from repro.version import __version__
from repro.config import (
    SystemConfig,
    NIDesign,
    TopologyKind,
    RoutingAlgorithm,
    MessageClass,
    CACHE_BLOCK_BYTES,
)
from repro.errors import ReproError

#: Scenario-composition API, re-exported lazily (PEP 562) so that importing
#: ``repro`` stays light and low-level modules can import ``repro.config``
#: without dragging in the full node model.
_LAZY_SCENARIO = ("ScenarioSpec", "MachineBuilder", "Scenario", "ScenarioResult", "Workload")

__all__ = [
    "__version__",
    "SystemConfig",
    "NIDesign",
    "TopologyKind",
    "RoutingAlgorithm",
    "MessageClass",
    "CACHE_BLOCK_BYTES",
    "ReproError",
    *_LAZY_SCENARIO,
]


def __getattr__(name: str):
    if name in _LAZY_SCENARIO:
        import repro.scenario

        return getattr(repro.scenario, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
