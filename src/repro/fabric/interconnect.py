"""Fixed-latency inter-node interconnect model.

The paper models the supercomputer-like rack fabric as a lossless network
with a fixed 35 ns latency per hop [Towles et al., Anton 2]; bandwidth is
intentionally provisioned so that it never throttles the studied workloads
(§5).  The model therefore exposes latency only.
"""

from __future__ import annotations

from repro.config import RackConfig, SystemConfig
from repro.errors import ConfigurationError
from repro.fabric.torus import Torus3D


class InterconnectModel:
    """Latency model of the intra-rack network."""

    def __init__(self, rack: RackConfig, frequency_ghz: float = 2.0) -> None:
        if frequency_ghz <= 0:
            raise ConfigurationError("frequency must be positive")
        self.rack = rack
        self.frequency_ghz = frequency_ghz
        self.torus = Torus3D(rack.torus_dims)
        # Precomputed once: node_to_node_latency_cycles sits on the
        # remote-request hot path, and round() per call is measurable there.
        self._hop_latency_cycles = int(round(rack.network_hop_ns * frequency_ghz))

    @classmethod
    def from_config(cls, config: SystemConfig) -> "InterconnectModel":
        return cls(config.rack, config.cores.frequency_ghz)

    @property
    def hop_latency_ns(self) -> float:
        return self.rack.network_hop_ns

    @property
    def hop_latency_cycles(self) -> int:
        return self._hop_latency_cycles

    def one_way_latency_cycles(self, hops: int) -> int:
        """One-way network latency for a path of ``hops`` chip-to-chip hops."""
        if hops < 0:
            raise ConfigurationError("hop count cannot be negative")
        return hops * self._hop_latency_cycles

    def round_trip_latency_cycles(self, hops: int) -> int:
        """Round-trip network latency (excludes remote-node servicing)."""
        return 2 * self.one_way_latency_cycles(hops)

    def node_to_node_latency_cycles(self, src: int, dst: int) -> int:
        """One-way latency between two specific rack nodes."""
        return self.one_way_latency_cycles(self.torus.hop_count(src, dst))
