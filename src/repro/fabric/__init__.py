"""Rack-scale fabric: the 512-node 3D torus and its fixed-latency links."""

from repro.fabric.torus import Torus3D
from repro.fabric.interconnect import InterconnectModel

__all__ = ["Torus3D", "InterconnectModel"]
