"""3D-torus rack fabric (§1, §5, §6.1.2).

The paper assumes a 512-node rack wired as an 8x8x8 3D torus with a fixed
35 ns latency per chip-to-chip hop.  This module provides the topology
itself: node addressing, minimal hop counts with wrap-around links, and the
average / maximum hop statistics quoted in §6.1.2 (6 and 12 hops
respectively for 512 nodes).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.config import RackConfig
from repro.errors import TopologyError
from repro.scenario.registry import register_topology

Coord3 = Tuple[int, int, int]


@register_topology("torus3d", scope="rack")
def build_rack_torus(config) -> "Torus3D":
    """3D-torus rack fabric (512 nodes, 8x8x8, fixed 35 ns per hop)."""
    return Torus3D.from_config(config.rack)


class Torus3D:
    """A 3D torus with per-dimension wrap-around links."""

    def __init__(self, dims: Tuple[int, int, int] = (8, 8, 8)) -> None:
        if len(dims) != 3 or any(d <= 0 for d in dims):
            raise TopologyError("torus dimensions must be three positive integers")
        self.dims = tuple(dims)
        # Distance structures: node-id -> coordinate (precomputed; node
        # fan-out is at most a few thousand) and one ring-distance table per
        # dimension indexed by |a - b|, so :meth:`hop_count` is O(1) with no
        # per-pair memo dict (512 nodes would otherwise grow a 262k-entry
        # cache under all-to-all traffic).
        dx, dy, _ = self.dims
        self._coords: List[Coord3] = [
            (node % dx, (node // dx) % dy, node // (dx * dy))
            for node in range(self.node_count)
        ]
        self._ring_tables: Tuple[List[int], ...] = tuple(
            [min(delta, size - delta) for delta in range(size)] for size in self.dims
        )

    @classmethod
    def from_config(cls, rack: RackConfig) -> "Torus3D":
        return cls(rack.torus_dims)

    @property
    def node_count(self) -> int:
        x, y, z = self.dims
        return x * y * z

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def coord(self, node_id: int) -> Coord3:
        """Coordinates of ``node_id`` (x fastest-varying)."""
        if not 0 <= node_id < self.node_count:
            raise TopologyError("node %d outside a %d-node torus" % (node_id, self.node_count))
        return self._coords[node_id]

    def node_id(self, coord: Coord3) -> int:
        """Inverse of :meth:`coord`."""
        x, y, z = coord
        dx, dy, dz = self.dims
        if not (0 <= x < dx and 0 <= y < dy and 0 <= z < dz):
            raise TopologyError("coordinate %r outside torus %r" % (coord, self.dims))
        return x + y * dx + z * dx * dy

    def nodes(self) -> Iterable[int]:
        return range(self.node_count)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    @staticmethod
    def _ring_distance(a: int, b: int, size: int) -> int:
        direct = abs(a - b)
        return min(direct, size - direct)

    def hop_count(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes (wrap-around links used, O(1))."""
        sc, dc = self.coord(src), self.coord(dst)
        tables = self._ring_tables
        return (tables[0][abs(sc[0] - dc[0])]
                + tables[1][abs(sc[1] - dc[1])]
                + tables[2][abs(sc[2] - dc[2])])

    def neighbors(self, node_id: int) -> List[int]:
        """The (up to) six torus neighbours of a node."""
        x, y, z = self.coord(node_id)
        dx, dy, dz = self.dims
        result = []
        for axis, (value, size) in enumerate(zip((x, y, z), self.dims)):
            for step in (-1, 1):
                coord = [x, y, z]
                coord[axis] = (value + step) % size
                neighbor = self.node_id(tuple(coord))
                if neighbor != node_id and neighbor not in result:
                    result.append(neighbor)
        return result

    def max_hop_count(self) -> int:
        """Network diameter (12 hops for an 8x8x8 torus, §6.1.2)."""
        return sum(d // 2 for d in self.dims)

    def average_hop_count(self) -> float:
        """Average hop count between two distinct uniformly random nodes."""
        total = 0.0
        for size in self.dims:
            distances = [self._ring_distance(0, k, size) for k in range(size)]
            total += sum(distances) / size
        # ``total`` is the expected distance when src/dst may coincide per
        # dimension; the paper quotes the average over node pairs, which for
        # an 8x8x8 torus evaluates to 6 hops.
        return total
