"""Off-chip memory substrate: DRAM timing, memory controllers and address maps."""

from repro.memory.dram import DramModel
from repro.memory.controller import MemoryController
from repro.memory.address import AddressMap

__all__ = ["DramModel", "MemoryController", "AddressMap"]
