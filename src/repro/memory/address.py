"""Static address-interleaving helpers.

The chip statically interleaves cache blocks across LLC slices (the block's
home tile is a pure function of its physical address, §3.1) and across
memory controllers and RRPPs (§4.3: incoming requests are distributed to
RRPPs by inspecting offset bits below the page offset, so the mapping can be
computed before translation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CACHE_BLOCK_BYTES
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AddressMap:
    """Interleaving of blocks over LLC slices, MCs and RRPPs."""

    llc_slices: int
    memory_controllers: int
    rrpps: int
    block_bytes: int = CACHE_BLOCK_BYTES

    def __post_init__(self) -> None:
        if self.llc_slices <= 0 or self.memory_controllers <= 0 or self.rrpps <= 0:
            raise ConfigurationError("address map needs positive slice/MC/RRPP counts")
        if self.block_bytes <= 0:
            raise ConfigurationError("block size must be positive")

    def block_index(self, addr: int) -> int:
        """Index of the cache block containing ``addr``."""
        if addr < 0:
            raise ConfigurationError("addresses cannot be negative")
        return addr // self.block_bytes

    def block_address(self, addr: int) -> int:
        """Block-aligned address."""
        return self.block_index(addr) * self.block_bytes

    def home_llc_slice(self, addr: int) -> int:
        """Home LLC slice (and directory) for the block containing ``addr``."""
        return self.block_index(addr) % self.llc_slices

    def memory_controller(self, addr: int) -> int:
        """Memory controller servicing the block containing ``addr``."""
        return self.block_index(addr) % self.memory_controllers

    def rrpp_for_offset(self, offset: int) -> int:
        """RRPP servicing an incoming request, chosen from the offset field.

        The interleaving aligns the RRPP with the *row* of the home LLC slice
        of the data it touches (mesh layout: slices are row-major, one RRPP
        per row), so each request reaches its home location in a minimal
        number of on-chip hops and never turns at the chip's edges (§4.3).
        """
        group = max(1, self.llc_slices // self.rrpps)
        return (self.block_index(offset) // group) % self.rrpps

    def mc_for_addr(self, addr: int) -> int:
        """Memory controller for the block containing ``addr``.

        Channels are interleaved at block granularity (the conventional DDR
        channel interleave), so a block's MC is *not* generally on the same
        mesh row as its home LLC slice — which is exactly why dimension-order
        routing congests the MC edge column and class-based routing is needed
        (§4.3).
        """
        return self.block_index(addr) % self.memory_controllers

    def blocks_in(self, offset: int, length: int):
        """Yield block-aligned offsets covering [offset, offset+length)."""
        if length <= 0:
            raise ConfigurationError("length must be positive")
        first = self.block_address(offset)
        last = self.block_address(offset + length - 1)
        block = first
        while block <= last:
            yield block
            block += self.block_bytes
