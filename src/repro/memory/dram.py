"""DRAM timing model.

Table 2 specifies a flat 50 ns access latency and the paper intentionally
assumes memory bandwidth is not the bottleneck (HMC-class interfaces,
§5 "Memory and Network Bandwidth Assumptions").  The model therefore charges
a fixed access latency plus a (generous) bandwidth occupancy so that the
memory system only ever throttles a run if an experiment misconfigures it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.resource import Channel


class DramModel:
    """A single DRAM device/channel behind one memory controller."""

    def __init__(
        self,
        sim: Simulator,
        latency_cycles: int,
        bandwidth_bytes_per_cycle: float,
        name: str = "dram",
    ) -> None:
        if latency_cycles < 0:
            raise ConfigurationError("DRAM latency cannot be negative")
        if bandwidth_bytes_per_cycle <= 0:
            raise ConfigurationError("DRAM bandwidth must be positive")
        self.sim = sim
        self.latency_cycles = latency_cycles
        self.channel = Channel(sim, bandwidth_bytes_per_cycle, name="%s-channel" % name)
        self.name = name
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def access(self, nbytes: int, is_write: bool, on_done: Optional[Callable[[], None]] = None) -> float:
        """Issue an access; returns its completion time and schedules ``on_done``."""
        if nbytes <= 0:
            raise ConfigurationError("DRAM access size must be positive")
        if is_write:
            self.writes += 1
            self.bytes_written += nbytes
        else:
            self.reads += 1
            self.bytes_read += nbytes
        grant = self.channel.send(nbytes)
        finish = grant + self.channel.serialization_cycles(nbytes) + self.latency_cycles
        if on_done is not None:
            self.sim.schedule_fast(finish - self.sim.now, on_done)
        return finish

    @property
    def accesses(self) -> int:
        return self.reads + self.writes
