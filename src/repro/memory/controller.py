"""Memory controller model.

One :class:`MemoryController` sits at each MC tile on the chip's east edge
(mesh) or hangs off the flattened butterfly (NOC-Out).  The controller owns a
:class:`~repro.memory.dram.DramModel` and adds a small scheduling occupancy
per request.  NOC traversal to/from the controller is the caller's business
(the SoC model routes packets to the MC's node), so this class only models
what happens once a request has arrived.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.errors import ConfigurationError
from repro.memory.dram import DramModel
from repro.sim.engine import Simulator
from repro.sim.resource import Resource


class MemoryController:
    """Queues requests onto a DRAM channel."""

    #: Fixed scheduling/command occupancy per request, in cycles.  The paper
    #: intentionally provisions memory so it never throttles the studied
    #: workloads (§5), so the scheduler accepts one request per cycle and
    #: the DRAM channel bandwidth is the only memory-side rate limit.
    SCHEDULING_CYCLES = 1

    def __init__(
        self,
        sim: Simulator,
        index: int,
        node: Hashable,
        dram: DramModel,
    ) -> None:
        if index < 0:
            raise ConfigurationError("memory controller index cannot be negative")
        self.sim = sim
        self.index = index
        self.node = node
        self.dram = dram
        self._scheduler = Resource(sim, name="mc%d-scheduler" % index)
        self.requests = 0

    def service(self, nbytes: int, is_write: bool, on_done: Optional[Callable[[], None]] = None) -> float:
        """Service a request that has arrived at this controller.

        Returns the completion time (when read data is available / the write
        is durable) and schedules ``on_done`` at that time.
        """
        self.requests += 1
        grant = self._scheduler.acquire(self.SCHEDULING_CYCLES)
        start_delay = grant + self.SCHEDULING_CYCLES - self.sim.now
        finish_holder = {}

        def issue() -> None:
            finish_holder["t"] = self.dram.access(nbytes, is_write, on_done)

        if start_delay <= 0:
            issue()
            return finish_holder["t"]
        self.sim.schedule_fast(start_delay, issue)
        # Conservative estimate for callers that want a time without waiting.
        return grant + self.SCHEDULING_CYCLES + self.dram.latency_cycles + \
            self.dram.channel.serialization_cycles(nbytes)

    def utilization(self) -> float:
        """Fraction of time the controller's scheduler has been busy."""
        return self._scheduler.utilization()
