"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors such as
``TypeError`` or ``KeyError`` raised by the standard library.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A :class:`~repro.config.SystemConfig` (or derived object) is invalid."""


class RegistryError(ConfigurationError):
    """A component registry lookup or registration failed.

    Subclasses :class:`ConfigurationError` so callers that treated unknown
    design/topology/workload names as configuration problems keep working.
    """


class ScenarioError(ReproError):
    """A :class:`~repro.scenario.spec.ScenarioSpec` is malformed or unresolvable."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistent state."""


class TopologyError(ReproError):
    """An on-chip or rack topology was asked for an impossible route/node."""


class RoutingError(TopologyError):
    """A routing function could not produce a legal path."""


class CoherenceError(ReproError):
    """The coherence protocol reached an illegal state transition."""


class ProtocolError(ReproError):
    """The soNUMA wire protocol was violated (malformed or out-of-order message)."""


class QueueError(ReproError):
    """A work/completion queue operation was illegal (full, empty, bad index)."""


class PlacementError(ReproError):
    """An NI placement or frontend-to-backend mapping is inconsistent."""


class WorkloadError(ReproError):
    """A workload/microbenchmark was configured with unusable parameters."""


class ExperimentError(ReproError):
    """An experiment harness failed to produce its table or figure data."""


class FaultError(ReproError):
    """A fault model or fault schedule was configured with unusable parameters."""


class LintError(ReproError):
    """The static-analysis driver was misconfigured (bad rule, path or baseline)."""


class ExploreError(ReproError):
    """A design-space exploration was misconfigured (bad space, objective or strategy)."""


class ObsError(ReproError):
    """The observability layer was misconfigured (bad probe, stream or record)."""
