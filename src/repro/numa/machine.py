"""Idealized NUMA baseline (Table 1 / Table 3 "NUMA projection").

The comparison point used throughout the paper is a hardware NUMA machine in
the spirit of the Cray T3D: a core issues a remote load/store directly (one
cycle), the request travels to the chip edge, crosses the rack network, is
serviced by the remote node's memory system and the reply returns straight
to the issuing core — no queue pairs, no NI interaction, no coherence
ping-pong.  The paper constructs this point analytically (it optimistically
charges a single cycle for issuing the load), and for multi-block transfers
it notes that a NUMA machine fundamentally moves one cache block per
load/store.

:class:`NumaMachine` provides both the analytical projection used by the
tables/figures and a small message-level simulation of the single-block path
over the same mesh NOC model, used for cross-validation in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import MessageClass, SystemConfig
from repro.errors import ConfigurationError
from repro.noc.fabric import NocFabric
from repro.noc.mesh import MeshTopology
from repro.scenario.registry import register_ni_design
from repro.sim.engine import Simulator
from repro.sonuma.unroll import block_count


@dataclass(frozen=True)
class NumaLatencyComponent:
    """One row of the NUMA column of Table 1 / Table 3."""

    label: str
    cycles: float


@register_ni_design("numa", label="NUMA", messaging=False)
class NumaMachine:
    """Analytical + simulated model of the load/store baseline."""

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config if config is not None else SystemConfig.paper_defaults()
        self.calibration = self.config.calibration

    # ------------------------------------------------------------------
    # Analytical projection (Tables 1/3, Figures 5/6)
    # ------------------------------------------------------------------
    def breakdown(self, hops: int = 1) -> List[NumaLatencyComponent]:
        """Component-wise zero-load latency of a single-block remote read."""
        if hops < 0:
            raise ConfigurationError("hop count cannot be negative")
        cal = self.calibration
        network = hops * self.config.network_hop_cycles
        return [
            NumaLatencyComponent("Remote read issuing (single load)", cal.numa_issue_cycles),
            NumaLatencyComponent("Transfer request to chip edge", cal.tile_to_edge_transfer_cycles),
            NumaLatencyComponent("Intra-rack network (%d hop)" % hops, network),
            NumaLatencyComponent("Read data from memory", cal.rrpp_service_cycles),
            NumaLatencyComponent("Intra-rack network (%d hop)" % hops, network),
            NumaLatencyComponent("Transfer reply to requesting core", cal.tile_to_edge_transfer_cycles),
        ]

    def remote_read_cycles(self, hops: int = 1) -> float:
        """Zero-load end-to-end latency of a single-block remote read."""
        return sum(component.cycles for component in self.breakdown(hops))

    def remote_read_ns(self, hops: int = 1) -> float:
        return self.config.cycles_to_ns(self.remote_read_cycles(hops))

    def transfer_latency_cycles(self, size_bytes: int, hops: int = 1) -> float:
        """Zero-load latency of a transfer of ``size_bytes``.

        The projection (used for Fig. 6) charges the fixed request path once
        and streams the remaining blocks back-to-back at one block per NOC
        injection slot; this matches the paper's construction of the "NUMA
        projection" curve (NIsplit minus its QP-interaction components).
        """
        blocks = block_count(size_bytes, self.config.cache_block_bytes)
        single = self.remote_read_cycles(hops)
        flits_per_block = self.config.blocks_per_noc_packet_flits
        return single + (blocks - 1) * flits_per_block

    # ------------------------------------------------------------------
    # Message-level simulation of the single-block path
    # ------------------------------------------------------------------
    def simulate_remote_read_cycles(self, tile_id: Optional[int] = None, hops: int = 1) -> float:
        """Simulate the on-chip part of a remote load on an idle mesh NOC.

        The request crosses the NOC from the issuing tile to the network
        router at the chip edge, the rack network and remote servicing are
        charged analytically (as in §5), and the reply crosses the NOC back
        to the core.
        """
        sim = Simulator()
        topology = MeshTopology(self.config.mesh_side, self.config.noc)
        fabric = NocFabric(sim, topology, self.config.noc)
        if tile_id is None:
            side = self.config.mesh_side
            tile_id = max(0, (side // 2 - 1) * side + (side // 2 - 1))
        source = topology.tile_coord(tile_id)
        port = (topology.ni_edge_column(), source[1])
        done = {}

        request_header = 8
        block = self.config.cache_block_bytes
        cal = self.calibration
        remote = 2 * hops * self.config.network_hop_cycles + cal.rrpp_service_cycles

        def reply_arrived(_packet) -> None:
            done["t"] = sim.now

        def at_remote() -> None:
            fabric.send(port, source, block, MessageClass.MEMORY_RESPONSE, reply_arrived)

        def at_port(_packet) -> None:
            sim.schedule_fast(remote, at_remote)

        def issue() -> None:
            fabric.send(source, port, request_header, MessageClass.MEMORY_REQUEST, at_port)

        sim.schedule_fast(cal.numa_issue_cycles, issue)
        sim.run()
        if "t" not in done:
            raise ConfigurationError("NUMA simulation did not complete")
        return done["t"]
