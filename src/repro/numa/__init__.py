"""The idealized hardware-NUMA baseline (load/store interface to remote memory)."""

from repro.numa.machine import NumaMachine

__all__ = ["NumaMachine"]
